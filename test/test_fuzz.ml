(* Tests for the coverage-guided fuzzer: RNG golden values (the
   reproduction contract starts at the bit level), mutator soundness,
   seed determinism, the seeded-bug hunt with its shrink-quality
   acceptance, ddmin 1-minimality on known counterexamples, and the
   [Generators.timely ?gap] splice contract under crash plans. *)

open Setsync_schedule
module Fault = Setsync_runtime.Fault
module Budget = Setsync_explore.Budget
module Property = Setsync_explore.Property
module Explorer = Setsync_explore.Explorer
module Shrink = Setsync_explore.Shrink
module Mutate = Setsync_fuzz.Mutate
module Corpus = Setsync_fuzz.Corpus
module Fuzz = Setsync_fuzz.Fuzz
module Fuzz_systems = Setsync_fuzz.Fuzz_systems

let schedule = Alcotest.testable Schedule.pp Schedule.equal
let set = Procset.of_list
let to_list s = List.init (Schedule.length s) (Schedule.get s)

(* ------------------------------------------------------------------ *)
(* RNG golden values: the fuzz loop is a pure function of its seed, so
   the raw streams are pinned — any change to the generator is a
   reproduction break and must be deliberate. *)

let test_rng_golden_int64 () =
  let draw seed = List.init 4 (fun _ -> ()) |> fun l ->
    let t = Rng.create ~seed in
    List.map (fun () -> Rng.next_int64 t) l
  in
  Alcotest.(check (list int64))
    "seed 1 raw stream"
    [ 0x910a2dec89025cc1L; 0xbeeb8da1658eec67L; 0xf893a2eefb32555eL; 0x71c18690ee42c90bL ]
    (draw 1);
  Alcotest.(check (list int64))
    "seed 42 raw stream"
    [ 0xbdd732262feb6e95L; 0x28efe333b266f103L; 0x47526757130f9f52L; 0x581ce1ff0e4ae394L ]
    (draw 42)

let test_rng_golden_derived () =
  let t = Rng.create ~seed:42 in
  Alcotest.(check (list int))
    "seed 42 int 100"
    [ 5; 91; 54; 60; 50; 50; 25; 96 ]
    (List.init 8 (fun _ -> Rng.int t 100));
  let t = Rng.create ~seed:7 in
  Alcotest.(check (list bool))
    "seed 7 bool"
    [ true; false; false; true; false; true; false; false ]
    (List.init 8 (fun _ -> Rng.bool t));
  let t = Rng.create ~seed:7 in
  Alcotest.(check (list string))
    "seed 7 float"
    [
      "0.38982974839127149"; "0.016788294528156111"; "0.90076068060688341";
      "0.58293029302807808";
    ]
    (List.init 4 (fun _ -> Printf.sprintf "%.17g" (Rng.float t)));
  let t = Rng.create ~seed:11 in
  Alcotest.(check (list int))
    "seed 11 geometric 0.35"
    [ 0; 0; 2; 1; 1; 1; 0; 3 ]
    (List.init 8 (fun _ -> Rng.geometric t 0.35))

let test_rng_geometric_args () =
  let t = Rng.create ~seed:1 in
  Alcotest.check_raises "p = 0 rejected"
    (Invalid_argument "Rng.geometric: need 0 < p <= 1") (fun () ->
      ignore (Rng.geometric t 0.));
  Alcotest.check_raises "p > 1 rejected"
    (Invalid_argument "Rng.geometric: need 0 < p <= 1") (fun () ->
      ignore (Rng.geometric t 1.5));
  Alcotest.(check int) "p = 1 always succeeds immediately" 0 (Rng.geometric t 1.)

(* ------------------------------------------------------------------ *)
(* Mutator soundness: every mutant [apply] produces respects [live],
   every declared contract, the length cap, and the crash budget —
   chained across many steps so mutants of mutants stay sound. *)

let test_mutator_soundness () =
  let contract = { Generators.p = set [ 0 ]; q = set [ 2 ]; bound = 2 } in
  let live p = p <> 3 in
  let env = Mutate.env ~live ~contracts:[ contract ] ~max_crashes:2 ~n:4 ~max_len:48 () in
  let rng = Rng.create ~seed:5 in
  let start =
    {
      Mutate.schedule = Source.take (Generators.timely ~live ~n:4 ~contract ~rng ()) 48;
      fault = [];
    }
  in
  Alcotest.(check bool) "start candidate valid" true (Mutate.valid env start);
  let names = Hashtbl.create 8 in
  let cand = ref start in
  for i = 1 to 300 do
    let name, mutant = Mutate.apply env rng !cand in
    Hashtbl.replace names name ();
    if not (Mutate.valid env mutant) then
      Alcotest.failf "mutant %d (%s) invalid: %a" i name Schedule.pp_full
        mutant.Mutate.schedule;
    cand := mutant
  done;
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "mutator %s exercised" name)
        true (Hashtbl.mem names name))
    Mutate.mutators

(* Golden pin for the seeded mutation chain: recorded against the
   List.nth-based contract-repair pass, so the array-backed pools in
   [Mutate.enforce_contract] are proven output-identical. *)
let test_mutate_golden () =
  let contract = { Generators.p = set [ 0; 1 ]; q = set [ 2; 3 ]; bound = 3 } in
  let env = Mutate.env ~contracts:[ contract ] ~max_crashes:2 ~n:4 ~max_len:32 () in
  let rng = Rng.create ~seed:2024 in
  let cand =
    ref
      {
        Mutate.schedule = Source.take (Generators.round_robin ~n:4 ()) 16;
        fault = [];
      }
  in
  let names = ref [] in
  for _ = 1 to 12 do
    let name, mutant = Mutate.apply env rng !cand in
    names := name :: !names;
    cand := mutant
  done;
  Alcotest.(check (list string)) "mutator names"
    [
      "regen-tail"; "dup-seg"; "regen-tail"; "dup-seg"; "swap"; "insert"; "regen-tail";
      "regen-tail"; "delete-seg"; "dup-seg"; "regen-tail"; "swap";
    ]
    (List.rev !names);
  Alcotest.(check (list int)) "final schedule"
    [ 0; 1; 1; 1; 0; 2; 1; 1; 1; 1; 1; 1; 1; 0; 0; 1; 0; 3; 1; 1; 0; 1 ]
    (Schedule.to_list !cand.Mutate.schedule);
  Alcotest.(check (list (pair int int))) "final fault" [] !cand.Mutate.fault

(* Cross-check [Timeliness.holds]/[observed_bound] boundary agreement
   against the mutator's contract-repair pass: every repaired mutant
   satisfies its contract exactly when its observed bound is within
   the contract bound, and tightening the bound by one flips [holds]
   unless the schedule is strictly tighter than required. *)
let test_timeliness_boundary_vs_repair () =
  let contract = { Generators.p = set [ 0 ]; q = set [ 2 ]; bound = 3 } in
  let env = Mutate.env ~contracts:[ contract ] ~max_crashes:0 ~n:4 ~max_len:40 () in
  let rng = Rng.create ~seed:23 in
  let cand =
    ref
      {
        Mutate.schedule = Source.take (Generators.timely ~n:4 ~contract ~rng ()) 40;
        fault = [];
      }
  in
  let p = contract.Generators.p and q = contract.Generators.q in
  let saw_exact = ref 0 in
  for i = 1 to 200 do
    let name, mutant = Mutate.apply env rng !cand in
    let s = mutant.Mutate.schedule in
    let b = Timeliness.observed_bound ~p ~q s in
    if not (Timeliness.holds ~bound:contract.Generators.bound ~p ~q s) then
      Alcotest.failf "mutant %d (%s) violates the repaired contract" i name;
    if b > contract.Generators.bound then
      Alcotest.failf "mutant %d (%s): observed %d exceeds contract bound" i name b;
    (* boundary agreement on this concrete schedule *)
    Alcotest.(check bool) "holds at observed" true (Timeliness.holds ~bound:b ~p ~q s);
    if b > 1 then
      Alcotest.(check bool)
        "fails one below observed" false
        (Timeliness.holds ~bound:(b - 1) ~p ~q s);
    if b = contract.Generators.bound then incr saw_exact;
    cand := mutant
  done;
  (* the repair pass is not over-conservative: some mutants sit exactly
     on the contract boundary *)
  Alcotest.(check bool) "boundary is reached" true (!saw_exact > 0)

(* Crash plans produced by the crash-shift mutator stay within the
   budget, in range, with distinct processes. *)
let test_mutator_crash_plans () =
  let env = Mutate.env ~max_crashes:2 ~n:3 ~max_len:24 () in
  let rng = Rng.create ~seed:9 in
  let cand = ref { Mutate.schedule = Source.take (Generators.round_robin ~n:3 ()) 24; fault = [] } in
  let saw_crash = ref false in
  for _ = 1 to 300 do
    let _, mutant = Mutate.apply env rng !cand in
    let plan = mutant.Mutate.fault in
    if plan <> [] then saw_crash := true;
    Alcotest.(check bool) "within crash budget" true (List.length plan <= 2);
    Fault.validate ~n:3 plan;
    cand := mutant
  done;
  Alcotest.(check bool) "crash-shift actually adds crashes" true !saw_crash

(* ------------------------------------------------------------------ *)
(* Seed determinism: same seed, same corpus trajectory, same verdict —
   the whole report prints identically. *)

let test_seed_determinism () =
  let go () =
    let sut = Fuzz_systems.counter_core ~params:Fuzz_systems.default_params () in
    Fuzz.run ~progress_interval:0.
      ~limits:(Budget.limits ~max_states:50 ())
      ~sut
      ~properties:[ Fuzz_systems.winner_argmin () ]
      ~seed:42 ()
  in
  let r1 = go () and r2 = go () in
  Alcotest.(check string)
    "reports identical byte-for-byte"
    (Fmt.str "%a" Fuzz.pp_report r1)
    (Fmt.str "%a" Fuzz.pp_report r2);
  match (r1.Fuzz.outcome, r2.Fuzz.outcome) with
  | Fuzz.Violation v1, Fuzz.Violation v2 ->
      Alcotest.check schedule "found schedules equal" v1.Fuzz.found v2.Fuzz.found;
      Alcotest.check schedule "shrunk schedules equal" v1.Fuzz.shrunk v2.Fuzz.shrunk;
      Alcotest.(check int) "same finding exec" v1.Fuzz.exec v2.Fuzz.exec
  | _ -> Alcotest.fail "expected both runs to find the seeded bug"

(* Different seeds explore differently (not a guarantee in general,
   but a regression canary that the seed actually feeds the loop). *)
let test_seed_matters () =
  let go seed =
    let sut = Fuzz_systems.counter_core ~bug:false ~params:Fuzz_systems.default_params () in
    let r =
      Fuzz.run ~progress_interval:0.
        ~limits:(Budget.limits ~max_states:20 ())
        ~sut
        ~properties:[ Fuzz_systems.winner_argmin () ]
        ~seed ()
    in
    r.Fuzz.digests
  in
  Alcotest.(check bool) "digest counts differ across seeds" true (go 1 <> go 2)

(* ------------------------------------------------------------------ *)
(* The acceptance hunt: with the documented seed (42) and budget, the
   fuzzer finds the planted argmin off-by-one, the shrunk
   counterexample has at most 15 steps, still violates on exact
   replay, and the faithful control finds nothing. *)

let test_seeded_bug_found_and_shrunk () =
  let sut = Fuzz_systems.counter_core ~params:Fuzz_systems.default_params () in
  let property = Fuzz_systems.winner_argmin () in
  let report =
    Fuzz.run ~progress_interval:0. ~len:96
      ~limits:(Budget.limits ~max_states:2_000 ())
      ~sut ~properties:[ property ] ~seed:42 ()
  in
  match report.Fuzz.outcome with
  | Fuzz.Passed -> Alcotest.fail "seeded bug not found within 2000 execs at seed 42"
  | Fuzz.Violation v ->
      Alcotest.(check string) "property" "winner-argmin" v.Fuzz.property;
      Alcotest.(check bool)
        (Fmt.str "shrunk to <= 15 steps (got %d)" (Schedule.length v.Fuzz.shrunk))
        true
        (Schedule.length v.Fuzz.shrunk <= 15);
      Alcotest.(check bool) "shrunk still violates on exact replay" true
        (Explorer.check_schedule ~sut ~property ~fault:v.Fuzz.fault v.Fuzz.shrunk <> None)

let test_fixed_control_passes () =
  let sut = Fuzz_systems.counter_core ~bug:false ~params:Fuzz_systems.default_params () in
  let report =
    Fuzz.run ~progress_interval:0. ~len:96
      ~limits:(Budget.limits ~max_states:300 ())
      ~sut
      ~properties:[ Fuzz_systems.winner_argmin () ]
      ~seed:42 ()
  in
  (match report.Fuzz.outcome with
  | Fuzz.Passed -> ()
  | Fuzz.Violation v ->
      Alcotest.failf "faithful control violated winner-argmin: %s" v.Fuzz.reason);
  Alcotest.(check int) "full budget spent" 300 report.Fuzz.execs

(* ------------------------------------------------------------------ *)
(* Shrinker quality: on known counterexamples the ddmin output still
   violates and is 1-minimal (deleting any single step loses the
   violation). *)

let test_shrink_quality () =
  let sut = Fuzz_systems.counter_core ~params:Fuzz_systems.default_params () in
  let property = Fuzz_systems.winner_argmin () in
  let violates s = Explorer.check_schedule ~sut ~property s <> None in
  let known =
    [
      (* the minimal trace plus leading/trailing noise of process 0 *)
      Schedule.of_list ~n:2 [ 0; 0; 0; 1; 1; 1; 1; 1; 1; 1; 1; 0 ];
      (* the same 8 steps of process 1 interleaved with process 0
         (too few p0 steps to complete an expiry write) *)
      Schedule.of_list ~n:2 [ 0; 1; 1; 0; 1; 1; 1; 0; 1; 1; 1; 0 ];
    ]
  in
  List.iteri
    (fun i ce ->
      Alcotest.(check bool) (Fmt.str "ce%d violates" i) true (violates ce);
      let r = Shrink.run ~violates ce in
      let s = r.Shrink.schedule in
      Alcotest.(check bool) (Fmt.str "ce%d shrunk still violates" i) true (violates s);
      let steps = to_list s in
      List.iteri
        (fun j _ ->
          let shorter =
            Schedule.of_list ~n:2 (List.filteri (fun idx _ -> idx <> j) steps)
          in
          if violates shorter then
            Alcotest.failf "ce%d shrunk not 1-minimal: step %d removable" i j)
        steps)
    known

(* ------------------------------------------------------------------ *)
(* [Generators.timely ?gap]: suffixes regenerated with the open-gap
   count splice onto a prefix without breaching the contract at the
   seam. *)

let test_timely_gap_splice () =
  let contract = { Generators.p = set [ 0 ]; q = set [ 2 ]; bound = 2 } in
  let prefix = Schedule.of_list ~n:3 [ 0; 1; 2 ] in
  (* open gap after the prefix: 1 q-step since the last p-step *)
  let rng = Rng.create ~seed:3 in
  let suffix = Source.take (Generators.timely ~gap:1 ~n:3 ~contract ~rng ()) 64 in
  let full = Schedule.append prefix suffix in
  for l = 1 to Schedule.length full do
    if
      not
        (Timeliness.holds ~bound:contract.Generators.bound ~p:contract.Generators.p
           ~q:contract.Generators.q (Schedule.prefix full l))
    then Alcotest.failf "contract breached at prefix length %d" l
  done;
  (* gap = bound - 1 forces the very first emissions to close the gap:
     the suffix must reach a p-step before any q-step *)
  let rng = Rng.create ~seed:3 in
  let tight = Source.take (Generators.timely ~gap:1 ~n:3 ~contract ~rng ()) 64 in
  let rec first_pq = function
    | [] -> None
    | s :: rest ->
        if Procset.mem s contract.Generators.p then Some `P
        else if Procset.mem s contract.Generators.q then Some `Q
        else first_pq rest
  in
  Alcotest.(check bool) "gap = bound-1: p arrives before q" true
    (first_pq (to_list tight) <> Some `Q);
  Alcotest.check_raises "negative gap rejected"
    (Invalid_argument "Generators.timely: negative gap") (fun () ->
      ignore (Generators.timely ~gap:(-1) ~n:3 ~contract ~rng ()))

(* Crash plans: with [crash_after] flipping [live] mid-run, emitted
   prefixes stay inside the promised S^i_{j,n} and dead processes
   never take another step. *)

let test_timely_under_crashes () =
  (* n = 4: processes 0,1 are the timely set, 2 is the observed set,
     3 is a bystander that keeps the system alive after p crashes *)
  let contract = { Generators.p = set [ 0; 1 ]; q = set [ 2 ]; bound = 2 } in
  let check plan ~len =
    let live, observe = Generators.crash_after ~n:4 plan in
    let rng = Rng.create ~seed:13 in
    let src = Generators.timely ~live ~n:4 ~contract ~rng () in
    let steps = Array.make 4 0 in
    let taken = ref [] in
    (try
       for _ = 1 to len do
         match Source.next src with
         | None -> raise Exit
         | Some p ->
             if not (live p) then Alcotest.failf "dead process %d scheduled" p;
             steps.(p) <- steps.(p) + 1;
             ignore (observe p steps.(p));
             taken := p :: !taken
       done
     with Exit -> ());
    let s = Schedule.of_list ~n:4 (List.rev !taken) in
    for l = 1 to Schedule.length s do
      if
        not
          (Timeliness.holds ~bound:contract.Generators.bound ~p:contract.Generators.p
             ~q:contract.Generators.q (Schedule.prefix s l))
      then Alcotest.failf "contract breached at prefix length %d" l
    done;
    s
  in
  (* one member of p crashes: the other carries the contract *)
  let s = check [ (0, 5) ] ~len:200 in
  Alcotest.(check int) "process 0 stopped at its budget" 5 (Schedule.occurrences s 0);
  Alcotest.(check bool) "process 1 keeps the contract alive" true
    (Schedule.occurrences s 1 > 0);
  (* all of p crashes: the generator must stop scheduling q (beyond
     filling the still-open gap to bound - 1) so every prefix stays
     inside the contract *)
  let s = check [ (0, 4); (1, 7) ] ~len:200 in
  let after_deaths =
    (* steps taken after both p-members are gone *)
    let l = to_list s in
    let rec drop c0 c1 = function
      | [] -> []
      | x :: rest ->
          let c0 = if x = 0 then c0 + 1 else c0 in
          let c1 = if x = 1 then c1 + 1 else c1 in
          if c0 >= 4 && c1 >= 7 then rest else drop c0 c1 rest
    in
    drop 0 0 l
  in
  let q_after =
    List.length (List.filter (fun x -> Procset.mem x contract.Generators.q) after_deaths)
  in
  Alcotest.(check bool)
    (Fmt.str "at most bound-1 q-steps once p is extinct (got %d)" q_after)
    true
    (q_after <= contract.Generators.bound - 1);
  Alcotest.(check bool) "scheduling continues after p is extinct" true
    (List.length after_deaths > 10)

(* ------------------------------------------------------------------ *)
(* Corpus bookkeeping: novelty ranking, eviction, deterministic picks. *)

let test_corpus () =
  let c = Corpus.create ~max_entries:2 () in
  Alcotest.(check bool) "fresh digest is novel" true (Corpus.note_digest c "a");
  Alcotest.(check bool) "repeat digest is not" false (Corpus.note_digest c "a");
  Alcotest.(check int) "digest count" 1 (Corpus.digests c);
  let cand i = { Mutate.schedule = Schedule.of_list ~n:2 [ i mod 2 ]; fault = [] } in
  Corpus.add c ~novelty:0 (cand 0);
  Alcotest.(check bool) "novelty 0 not kept" true (Corpus.is_empty c);
  Corpus.add c ~novelty:1 (cand 0);
  Corpus.add c ~novelty:5 (cand 1);
  Corpus.add c ~novelty:3 (cand 0);
  Alcotest.(check int) "eviction holds the cap" 2 (Corpus.size c);
  (* rank bias: the high-novelty entry dominates picks *)
  let rng = Rng.create ~seed:1 in
  let top = ref 0 in
  for _ = 1 to 100 do
    let p = Corpus.pick c rng in
    if Schedule.get p.Mutate.schedule 0 = 1 then incr top
  done;
  Alcotest.(check bool) "picks skew toward high novelty" true (!top > 50)

(* At-capacity accounting: a better candidate displaces the worst
   (eviction), a candidate ranking at or below the worst is dropped
   (rejection) — the old list implementation silently conflated the
   two. The surviving entries and their order are pinned. *)
let test_corpus_capacity_counters () =
  let c = Corpus.create ~max_entries:2 () in
  let cand i = { Mutate.schedule = Schedule.of_list ~n:4 [ i mod 4 ]; fault = [] } in
  Corpus.add c ~novelty:5 (cand 0);
  Corpus.add c ~novelty:3 (cand 1);
  Alcotest.(check int) "no eviction below capacity" 0 (Corpus.evictions c);
  Corpus.add c ~novelty:3 (cand 2);
  (* ties with the worst -> newcomer ranks after it -> rejected *)
  Alcotest.(check int) "tie with worst is rejected" 1 (Corpus.rejections c);
  Alcotest.(check int) "rejection does not evict" 0 (Corpus.evictions c);
  Corpus.add c ~novelty:4 (cand 3);
  Alcotest.(check int) "better candidate evicts the worst" 1 (Corpus.evictions c);
  Alcotest.(check int) "size stays at capacity" 2 (Corpus.size c);
  (* deterministic rank order: rng always drawing rank 0 then rank 1 *)
  let rng = Rng.create ~seed:3 in
  let ranks = ref [] in
  for _ = 1 to 200 do
    let p = Corpus.pick c rng in
    ranks := Schedule.get p.Mutate.schedule 0 :: !ranks
  done;
  let seen = List.sort_uniq compare !ranks in
  Alcotest.(check (list int)) "survivors are novelty 5 and 4" [ 0; 3 ] seen

(* The digest filter is fixed-size: noting far more digests than the
   old hashtable could hold leaves the corpus at constant memory, the
   filter starts forgetting (deterministically), and the novelty
   signal stays monotone. *)
let test_digest_filter_bounded () =
  let c = Corpus.create ~digest_slots:1024 () in
  let novel = ref 0 in
  for i = 1 to 100_000 do
    if Corpus.note_digest c (Printf.sprintf "digest-%d" i) then incr novel
  done;
  Alcotest.(check int) "every distinct digest reads as novel" 100_000 !novel;
  Alcotest.(check int) "coverage count matches" 100_000 (Corpus.digests c);
  Alcotest.(check bool) "the bounded filter forgot digests" true
    (Corpus.digest_evictions c > 0);
  (* the whole corpus stays near the slot-array size: ~1k slots plus
     bookkeeping, where the unbounded table held 100k digest strings
     (> 400k words). [Obj.reachable_words] counts every live word. *)
  let words = Obj.reachable_words (Obj.repr c) in
  Alcotest.(check bool)
    (Fmt.str "constant memory (%d words)" words)
    true (words < 10_000);
  (* repeats within the live window are still deduplicated *)
  Alcotest.(check bool) "fresh repeat is not novel" true
    (Corpus.note_digest c "again" && not (Corpus.note_digest c "again"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "setsync_fuzz"
    [
      ( "rng",
        [
          Alcotest.test_case "golden int64 streams" `Quick test_rng_golden_int64;
          Alcotest.test_case "golden derived draws" `Quick test_rng_golden_derived;
          Alcotest.test_case "geometric argument checks" `Quick test_rng_geometric_args;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "soundness under chaining" `Quick test_mutator_soundness;
          Alcotest.test_case "seeded chain golden" `Quick test_mutate_golden;
          Alcotest.test_case "timeliness boundary vs contract repair" `Quick
            test_timeliness_boundary_vs_repair;
          Alcotest.test_case "crash plans stay within budget" `Quick
            test_mutator_crash_plans;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same report" `Quick test_seed_determinism;
          Alcotest.test_case "different seeds differ" `Quick test_seed_matters;
        ] );
      ( "hunt",
        [
          Alcotest.test_case "seeded bug found and shrunk" `Quick
            test_seeded_bug_found_and_shrunk;
          Alcotest.test_case "faithful control passes" `Quick test_fixed_control_passes;
        ] );
      ( "shrink",
        [ Alcotest.test_case "still-violating and 1-minimal" `Quick test_shrink_quality ] );
      ( "timely",
        [
          Alcotest.test_case "gap splice preserves the contract" `Quick
            test_timely_gap_splice;
          Alcotest.test_case "contract survives crash plans" `Quick
            test_timely_under_crashes;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "novelty ranking and eviction" `Quick test_corpus;
          Alcotest.test_case "capacity eviction/rejection counters" `Quick
            test_corpus_capacity_counters;
          Alcotest.test_case "bounded digest filter memory" `Quick
            test_digest_filter_bounded;
        ] );
    ]
