(* Tests for the bounded model-checking subsystem: explorer state
   counts against hand-counted spaces, verdict-preservation of the
   reductions, shrinker minimality, budget truncation, determinism. *)

open Setsync_schedule
module Register = Setsync_memory.Register
module Store = Setsync_memory.Store
module Trace = Setsync_memory.Trace
module Fiber = Setsync_runtime.Fiber
module Shm = Setsync_runtime.Shm
module Machine = Setsync_runtime.Machine
module Run = Setsync_runtime.Run
module Budget = Setsync_explore.Budget
module Property = Setsync_explore.Property
module Explorer = Setsync_explore.Explorer
module Shrink = Setsync_explore.Shrink
module Systems = Setsync_explore.Systems
module Parallel = Setsync_explore.Parallel

let schedule = Alcotest.testable Schedule.pp Schedule.equal

(* ------------------------------------------------------------------ *)
(* Systems under test *)

(* Two processes; process p writes 1 into its own register, then
   halts. A returning body occupies one extra step — the fiber
   finishes on the step after its last atomic action — so each process
   here is a 2-step process: write, then halt. Observation-complete:
   registers plus the halted set determine everything. *)
let single_writer_sut () =
  {
    Explorer.n = 2;
    fresh =
      (fun ~store ->
        let r = Store.array store ~pp:Fmt.int ~name:"r" 2 (fun _ -> 0) in
        (* machine form: pc counts steps taken; step 0 is the write,
           step 1 the halting return (same 2-step shape as the fiber) *)
        let pcs = Array.make 2 0 in
        {
          Explorer.body = (fun p () -> Shm.write r.(p) 1);
          observe = (fun () -> (Register.peek r.(0), Register.peek r.(1)));
          substrate = None;
          machine =
            Some
              {
                Explorer.m_step =
                  (fun p ->
                    if pcs.(p) = 0 then Machine.write r.(p) 1;
                    pcs.(p) <- pcs.(p) + 1);
                m_halted = (fun p -> pcs.(p) >= 2);
                m_save =
                  (fun () ->
                    let saved = Array.copy pcs in
                    fun () -> Array.blit saved 0 pcs 0 2);
                m_payload = None;
                m_perms = [ [| 0; 1 |] ];
              };
        });
    obs_fingerprint = (fun (a, b) -> Printf.sprintf "%d,%d" a b);
  }

(* Two processes; process p writes 1 then 2 into its own register,
   then halts (a 3-step process: write, write, halt). Still
   observation-complete, and now interleavings of the same multiset of
   steps collapse to the same state — the global state is exactly the
   pair of per-process step counts — so fingerprint pruning has
   something to do. *)
let double_writer_sut () =
  {
    Explorer.n = 2;
    fresh =
      (fun ~store ->
        let r = Store.array store ~pp:Fmt.int ~name:"r" 2 (fun _ -> 0) in
        let pcs = Array.make 2 0 in
        {
          Explorer.body =
            (fun p () ->
              Shm.write r.(p) 1;
              Shm.write r.(p) 2);
          observe = (fun () -> (Register.peek r.(0), Register.peek r.(1)));
          substrate = None;
          machine =
            Some
              {
                Explorer.m_step =
                  (fun p ->
                    (match pcs.(p) with
                    | 0 -> Machine.write r.(p) 1
                    | 1 -> Machine.write r.(p) 2
                    | _ -> ());
                    pcs.(p) <- pcs.(p) + 1);
                m_halted = (fun p -> pcs.(p) >= 3);
                m_save =
                  (fun () ->
                    let saved = Array.copy pcs in
                    fun () -> Array.blit saved 0 pcs 0 2);
                (* the two writers are role-identical, so the full
                   swap group is admissible; the payload renders each
                   (register, pc) pair at its renamed slot *)
                m_payload =
                  Some
                    (fun ~perm ->
                      let vals = Array.make 2 (0, 0) in
                      for p = 0 to 1 do
                        vals.(perm.(p)) <- (Register.peek r.(p), pcs.(p))
                      done;
                      Printf.sprintf "%d.%d|%d.%d" (fst vals.(0)) (snd vals.(0))
                        (fst vals.(1)) (snd vals.(1)));
                m_perms = [ [| 0; 1 |]; [| 1; 0 |] ];
              };
        });
    obs_fingerprint = (fun (a, b) -> Printf.sprintf "%d,%d" a b);
  }

type pipe_obs = { ping : int; pong : int; v1 : int; phase1 : int }

(* p1 bumps ping forever; p2 copies ping into pong forever. p2's read
   value and loop position are hidden process-local state, so the
   observation exposes them explicitly (v1, phase1). The refs must be
   updated {e inside} the atomic action: [v1 := Shm.read ping] would
   park the read value in the suspended continuation until the next
   step, leaving it invisible to [observe] — and fingerprinting over an
   incomplete observation merges states with different futures. This
   is what an observation-complete sut looks like when process code
   carries local state across steps. *)
let pipe_sut () =
  {
    Explorer.n = 2;
    fresh =
      (fun ~store ->
        let ping = Store.register store ~pp:Fmt.int ~name:"ping" 0 in
        let pong = Store.register store ~pp:Fmt.int ~name:"pong" 0 in
        let v1 = ref 0 and phase1 = ref 0 in
        let i0 = ref 0 in
        {
          Explorer.body =
            (fun p () ->
              if p = 0 then begin
                let i = ref 0 in
                while true do
                  incr i;
                  Shm.write ping !i
                done
              end
              else
                while true do
                  Fiber.atomic (fun () ->
                      v1 := Register.read ping;
                      phase1 := 1);
                  Fiber.atomic (fun () ->
                      Register.write pong !v1;
                      phase1 := 0)
                done);
          observe =
            (fun () ->
              {
                ping = Register.peek ping;
                pong = Register.peek pong;
                v1 = !v1;
                phase1 = !phase1;
              });
          substrate = None;
          machine =
            (* [i0] is the machine's copy of p0's loop counter (the
               fiber body allocates its own); p1's locals are the same
               refs [observe] reads, just as in the fiber form *)
            Some
              {
                Explorer.m_step =
                  (fun p ->
                    if p = 0 then begin
                      incr i0;
                      Machine.write ping !i0
                    end
                    else if !phase1 = 0 then begin
                      v1 := Machine.read ping;
                      phase1 := 1
                    end
                    else begin
                      Machine.write pong !v1;
                      phase1 := 0
                    end);
                m_halted = (fun _ -> false);
                m_save =
                  (fun () ->
                    let si = !i0 and sv = !v1 and sp = !phase1 in
                    fun () ->
                      i0 := si;
                      v1 := sv;
                      phase1 := sp);
                m_payload = None;
                m_perms = [ [| 0; 1 |] ];
              };
        });
    obs_fingerprint =
      (fun o -> Printf.sprintf "%d,%d,%d,%d" o.ping o.pong o.v1 o.phase1);
  }

let pong_below limit =
  Property.safety
    ~name:(Printf.sprintf "pong<%d" limit)
    (fun st -> if st.Explorer.obs.pong < limit then None else Some "pong too large")

let pong_le_ping =
  Property.safety ~name:"pong<=ping" (fun st ->
      if st.Explorer.obs.pong <= st.Explorer.obs.ping then None
      else Some "pong overtook ping")

let stats_of (r : Explorer.report) = r.Explorer.stats

(* ------------------------------------------------------------------ *)
(* (a) hand-counted state spaces *)

(* Single-writer system, depth 4, no reductions. Each process has
   exactly 2 steps, so the state space is every sequence over {p1,p2}
   of length <= 4 with at most 2 steps per process:
   1 + 2 + 4 + 6 + 6 = 19 prefixes, max depth 4. *)
let test_count_brute () =
  let report =
    Explorer.explore ~sut:(single_writer_sut ()) ~properties:[]
      (Explorer.config ~prune_fingerprints:false ~sleep_sets:false ~depth:4 ())
  in
  let s = stats_of report in
  Alcotest.(check int) "visited" 19 s.Budget.visited;
  Alcotest.(check int) "max depth" 4 s.Budget.max_depth;
  Alcotest.(check int) "no fp prunes" 0 s.Budget.pruned_fingerprint;
  Alcotest.(check int) "no sleep prunes" 0 s.Budget.pruned_sleep;
  Alcotest.(check bool) "exhaustive" false s.Budget.truncated

(* Same system with the commutation reduction. Write footprints are
   {r[1]} resp. {r[2]}; halt steps touch nothing — so every prefix
   ending p2·p1 (distinct processes, smaller process last, disjoint
   footprints) is discarded, and its subtree never generated. Walking
   the tree by hand: pruned are [2;1], [1;2;1], [2;2;1], [1;2;2;1]
   (4 prunes); visited are [], [1], [2], [1;1], [1;2], [2;2],
   [1;1;2], [1;2;2], [1;1;2;2] (9 states). *)
let test_count_sleep () =
  let report =
    Explorer.explore ~sut:(single_writer_sut ()) ~properties:[]
      (Explorer.config ~prune_fingerprints:false ~sleep_sets:true ~depth:4 ())
  in
  let s = stats_of report in
  Alcotest.(check int) "visited" 9 s.Budget.visited;
  Alcotest.(check int) "sleep pruned" 4 s.Budget.pruned_sleep

(* Double-writer system (3-step processes), depth 4, brute force:
   sequences of length <= 4 with at most 3 steps per process,
   1 + 2 + 4 + 8 + 14 = 29. *)
let test_count_double_brute () =
  let report =
    Explorer.explore ~sut:(double_writer_sut ()) ~properties:[]
      (Explorer.config ~prune_fingerprints:false ~sleep_sets:false ~depth:4 ())
  in
  let s = stats_of report in
  Alcotest.(check int) "visited" 29 s.Budget.visited;
  Alcotest.(check int) "max depth" 4 s.Budget.max_depth

(* Same with fingerprint memoization. The state is the pair of
   per-process step counts (a,b), a,b <= 3, a+b <= 4 — 13 distinct
   states. Only the first prefix reaching a state is expanded: the 10
   states of depth < 4 contribute 2+4+6+6 = 18 children, so 19 nodes
   are generated and visited. Re-encounters below the depth bound are
   pruned: (1,1) once, (2,1) and (1,2) once each — 3 fingerprint
   prunes (duplicates at depth 4 are cut by the bound instead). *)
let test_count_double_fingerprint () =
  let report =
    Explorer.explore ~sut:(double_writer_sut ()) ~properties:[]
      (Explorer.config ~prune_fingerprints:true ~sleep_sets:false ~depth:4 ())
  in
  let s = stats_of report in
  Alcotest.(check int) "visited" 19 s.Budget.visited;
  Alcotest.(check int) "fp pruned" 3 s.Budget.pruned_fingerprint

(* ------------------------------------------------------------------ *)
(* (b) reductions preserve property verdicts *)

let verdict_of name (r : Explorer.report) = List.assoc name r.Explorer.verdicts

let test_pruning_preserves_verdicts () =
  let properties = [ pong_below 2; pong_le_ping ] in
  let run ~prune_fingerprints ~sleep_sets =
    Explorer.explore ~sut:(pipe_sut ()) ~properties
      (Explorer.config ~prune_fingerprints ~sleep_sets ~depth:6 ())
  in
  let brute = run ~prune_fingerprints:false ~sleep_sets:false in
  let configs =
    [
      ("fp", run ~prune_fingerprints:true ~sleep_sets:false);
      ("sleep", run ~prune_fingerprints:false ~sleep_sets:true);
      ("both", run ~prune_fingerprints:true ~sleep_sets:true);
    ]
  in
  (* the invariant holds everywhere, the bound is violated somewhere *)
  Alcotest.(check bool)
    "brute: pong<=ping holds" true
    (verdict_of "pong<=ping" brute = Explorer.Ok_bounded);
  Alcotest.(check bool)
    "brute: pong<2 violated" true
    (verdict_of "pong<2" brute <> Explorer.Ok_bounded);
  List.iter
    (fun (label, reduced) ->
      List.iter
        (fun (p : _ Property.t) ->
          let same =
            match (verdict_of p.Property.name brute, verdict_of p.Property.name reduced) with
            | Explorer.Ok_bounded, Explorer.Ok_bounded -> true
            | Explorer.Violated _, Explorer.Violated _ -> true
            | _ -> false
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s verdict preserved" label p.Property.name)
            true same)
        properties;
      (* any counterexample a reduced run reports must actually violate *)
      List.iter
        (fun (p : _ Property.t) ->
          match verdict_of p.Property.name reduced with
          | Explorer.Ok_bounded -> ()
          | Explorer.Violated { schedule; _ } ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s counterexample replays" label p.Property.name)
                true
                (Explorer.check_schedule ~sut:(pipe_sut ()) ~property:p schedule <> None))
        properties;
      Alcotest.(check bool)
        (Printf.sprintf "%s explored less or equal" label)
        true
        ((stats_of reduced).Budget.visited <= (stats_of brute).Budget.visited))
    configs

(* ------------------------------------------------------------------ *)
(* (c) shrinker: still violating, 1-minimal *)

let test_shrink_minimal () =
  let sut = pipe_sut () in
  let property = pong_below 2 in
  let report =
    Explorer.explore ~sut ~properties:[ property ]
      (Explorer.config ~prune_fingerprints:false ~sleep_sets:false ~depth:6 ())
  in
  let found =
    match verdict_of "pong<2" report with
    | Explorer.Violated { schedule; _ } -> schedule
    | Explorer.Ok_bounded -> Alcotest.fail "expected a counterexample"
  in
  let violates s = Explorer.check_schedule ~sut ~property s <> None in
  let shrunk = (Shrink.run ~violates found).Shrink.schedule in
  Alcotest.(check bool) "shrunk still violates" true (violates shrunk);
  (* pong reaches 2 only via: ping:=1, ping:=2, p2 reads 2, p2 writes 2 *)
  Alcotest.check schedule "shrunk to the minimal witness"
    (Schedule.of_list ~n:2 [ 0; 0; 1; 1 ])
    shrunk;
  (* 1-minimality: dropping any single step must make it pass *)
  let steps = Schedule.to_list shrunk in
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) steps in
      Alcotest.(check bool)
        (Printf.sprintf "dropping step %d makes it pass" i)
        false
        (violates (Schedule.of_list ~n:2 without)))
    steps

let test_shrink_synthetic () =
  (* predicate independent of any replay: at least three p1-steps *)
  let violates s = Schedule.occurrences s 0 >= 3 in
  let noisy = Schedule.of_list ~n:3 [ 1; 0; 2; 0; 1; 2; 0; 2; 1; 0 ] in
  let r = Shrink.run ~violates noisy in
  Alcotest.check schedule "three p1 steps remain" (Schedule.of_list ~n:3 [ 0; 0; 0 ])
    r.Shrink.schedule;
  Alcotest.check_raises "passing input rejected"
    (Invalid_argument "Shrink.run: input schedule does not violate the property")
    (fun () -> ignore (Shrink.run ~violates (Schedule.of_list ~n:3 [ 0; 1 ])))

(* ------------------------------------------------------------------ *)
(* (d) determinism and budgets *)

(* every stats field except the clocks (and, for parallel runs, the
   frontier peak, which is a racy sample of the shared deques) *)
let counts_of (s : Budget.stats) =
  ( s.Budget.visited,
    s.Budget.safety_checked,
    s.Budget.pruned_fingerprint,
    s.Budget.pruned_sleep,
    s.Budget.replays,
    s.Budget.replay_steps,
    s.Budget.max_depth,
    s.Budget.truncated )

let reports_equal (a : Explorer.report) (b : Explorer.report) =
  let verdict_eq v w =
    match (v, w) with
    | Explorer.Ok_bounded, Explorer.Ok_bounded -> true
    | Explorer.Violated x, Explorer.Violated y ->
        Schedule.equal x.schedule y.schedule && String.equal x.reason y.reason
    | _ -> false
  in
  List.length a.Explorer.verdicts = List.length b.Explorer.verdicts
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && verdict_eq v1 v2)
       a.Explorer.verdicts b.Explorer.verdicts
  && counts_of a.Explorer.stats = counts_of b.Explorer.stats
  && a.Explorer.stats.Budget.frontier_peak = b.Explorer.stats.Budget.frontier_peak

let test_deterministic () =
  let params = { Setsync_detector.Kanti_omega.n = 2; t = 1; k = 1 } in
  let run () =
    Explorer.explore
      ~sut:(Systems.kanti_detector ~params ())
      ~properties:
        [
          Property.anti_omega_stabilized ~k:1
            ~outputs:(fun st -> st.Explorer.obs.Systems.fd_outputs)
            ~correct:(fun st -> Run.correct st.Explorer.run);
        ]
      (Explorer.config ~prune_fingerprints:false
         ~limits:(Budget.limits ~max_states:40 ())
         ~depth:12 ())
  in
  let first = run () and second = run () in
  Alcotest.(check bool) "identical reports" true (reports_equal first second);
  Alcotest.(check bool) "budget truncated" true first.Explorer.stats.Budget.truncated;
  Alcotest.(check int) "exactly the budget" 40 first.Explorer.stats.Budget.visited

let test_exhaustive_when_unbounded () =
  let report =
    Explorer.explore ~sut:(double_writer_sut ()) ~properties:[]
      (Explorer.config ~depth:4 ())
  in
  Alcotest.(check bool) "not truncated" false report.Explorer.stats.Budget.truncated

(* the budget expires against the wall clock: under any domain count a
   0.2 s budget must cut the run after ~0.2 s of real time (the old
   [Sys.time]-based check measured CPU time, which accrues N× faster
   under N domains) *)
let test_wall_clock_budget () =
  let sut = Systems.pause_procs ~n:3 in
  List.iter
    (fun domains ->
      let t0 = Unix.gettimeofday () in
      let report =
        Explorer.explore ~domains ~sut ~properties:[]
          (Explorer.config ~prune_fingerprints:false ~sleep_sets:false
             ~limits:(Budget.limits ~max_seconds:0.2 ())
             ~depth:200 ())
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      let label fmt = Printf.sprintf "%s (domains=%d)" fmt domains in
      Alcotest.(check bool) (label "truncated") true report.Explorer.stats.Budget.truncated;
      Alcotest.(check bool) (label "expired within ~1x wall") true (elapsed < 2.0);
      Alcotest.(check bool) (label "ran for at least the budget") true (elapsed >= 0.15);
      Alcotest.(check bool)
        (label "stats report the wall time")
        true
        (report.Explorer.stats.Budget.wall_seconds >= 0.15
        && report.Explorer.stats.Budget.wall_seconds < 2.0))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* (e) sleep-set reduction must not skip safety checks *)

(* Schedule-sensitive safety property: the interleaving itself (not
   the reached state) is what violates. Every violating prefix ends
   p2·p1 with disjoint write footprints, i.e. is exactly the shape the
   commutation reduction discards — the old code dropped these without
   a safety check and still printed "exhaustive". *)
let no_p2p1_suffix =
  Property.safety ~name:"no-p2p1-suffix" (fun st ->
      match List.rev (Schedule.to_list st.Explorer.prefix) with
      | 0 :: 1 :: _ -> Some "schedule ends p2 then p1"
      | _ -> None)

let test_sleep_set_safety_checked () =
  let explore ~sleep_sets =
    Explorer.explore ~sut:(single_writer_sut ()) ~properties:[ no_p2p1_suffix ]
      (Explorer.config ~prune_fingerprints:false ~sleep_sets ~depth:4 ())
  in
  let brute = explore ~sleep_sets:false in
  Alcotest.(check bool)
    "brute force finds the violation" true
    (verdict_of "no-p2p1-suffix" brute <> Explorer.Ok_bounded);
  (* regression: with the reduction on, every violating interleaving is
     commutation-pruned; the violation must still be reported *)
  let reduced = explore ~sleep_sets:true in
  (match verdict_of "no-p2p1-suffix" reduced with
  | Explorer.Ok_bounded ->
      Alcotest.fail "sleep-set pruning silently skipped a safety violation"
  | Explorer.Violated { schedule; _ } ->
      Alcotest.(check bool)
        "counterexample ends p2 then p1" true
        (match List.rev (Schedule.to_list schedule) with
        | 0 :: 1 :: _ -> true
        | _ -> false));
  let s = stats_of reduced in
  Alcotest.(check bool)
    "pruned states were safety-checked" true
    (s.Budget.safety_checked > s.Budget.visited)

(* ------------------------------------------------------------------ *)
(* (f) check_schedule: one replay, not one per prefix *)

let counting_sut sut =
  let count = ref 0 in
  ( {
      sut with
      Explorer.fresh =
        (fun ~store ->
          incr count;
          sut.Explorer.fresh ~store);
    },
    count )

(* the old per-prefix scan for reference *)
let reference_check ~sut ~property s =
  let len = Schedule.length s in
  let rec scan d =
    if d > len then None
    else
      match property.Property.check (Explorer.evaluate ~sut (Schedule.prefix s d)) with
      | Some reason -> Some reason
      | None -> scan (d + 1)
  in
  scan 0

let test_check_schedule_single_replay () =
  let property = pong_below 2 in
  let schedules =
    [
      [ 0; 0; 1; 1 ] (* violates: pong reaches 2 *);
      [ 0; 1; 0; 1 ] (* passes: pong stays at 1 *);
      [ 1; 1; 0; 1; 1 ];
      [];
    ]
  in
  List.iter
    (fun steps ->
      let s = Schedule.of_list ~n:2 steps in
      let sut, count = counting_sut (pipe_sut ()) in
      let got = Explorer.check_schedule ~sut ~property s in
      let want = reference_check ~sut:(pipe_sut ()) ~property s in
      Alcotest.(check bool)
        (Printf.sprintf "verdict matches per-prefix scan (len %d)" (List.length steps))
        true
        ((got = None) = (want = None));
      Alcotest.(check int)
        (Printf.sprintf "one instance per check (len %d)" (List.length steps))
        1 !count)
    schedules

let test_shrink_replay_count () =
  let sut, count = counting_sut (pipe_sut ()) in
  let property = pong_below 2 in
  let found = Schedule.of_list ~n:2 [ 0; 1; 0; 1; 0; 1; 1 ] in
  (* sanity: it violates (three ping bumps, pong copies the last) *)
  Alcotest.(check bool) "input violates" true
    (Explorer.check_schedule ~sut ~property found <> None);
  count := 0;
  let violates s = Explorer.check_schedule ~sut ~property s <> None in
  let r = Shrink.run ~violates found in
  Alcotest.(check bool) "shrunk still violates" true (violates r.Shrink.schedule);
  (* one replay per ddmin test (plus the final violates above): the old
     per-prefix scan cost O(len) instances per test *)
  Alcotest.(check int) "one instance per ddmin test" (r.Shrink.tests + 1) !count

(* ------------------------------------------------------------------ *)
(* (g) parallel exploration: verdict-equivalent to sequential *)

let violated_names (r : Explorer.report) =
  List.filter_map
    (fun (name, v) ->
      match v with Explorer.Violated _ -> Some name | Explorer.Ok_bounded -> None)
    r.Explorer.verdicts
  |> List.sort String.compare

(* visit accounting, without the replay accounting: under [path_replay]
   the sequential engine synthesizes commutation prunes from sibling
   footprints (no replay paid) while parallel workers discover them on
   arrival (replay already paid), so replays/replay_steps are
   deterministic per mode but not equal across modes — visit counts
   are *)
let visit_counts_of (s : Budget.stats) =
  ( s.Budget.visited,
    s.Budget.safety_checked,
    s.Budget.pruned_fingerprint,
    s.Budget.pruned_sleep,
    s.Budget.max_depth,
    s.Budget.truncated )

(* with fingerprint pruning off the explored prefix set is
   order-independent, so parallel visit counts must match sequential
   exactly (frontier peak excepted: the parallel one samples shared
   deques) *)
let cross_check ?(exact_counts = true) ~name ~mk_sut ~properties ~config () =
  let seq = Explorer.explore ~sut:(mk_sut ()) ~properties (config ()) in
  List.iter
    (fun domains ->
      let par = Explorer.explore ~domains ~sut:(mk_sut ()) ~properties (config ()) in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: same violated set (domains=%d)" name domains)
        (violated_names seq) (violated_names par);
      Alcotest.(check bool)
        (Printf.sprintf "%s: both exhaustive (domains=%d)" name domains)
        seq.Explorer.stats.Budget.truncated par.Explorer.stats.Budget.truncated;
      if exact_counts then begin
        Alcotest.(check bool)
          (Printf.sprintf "%s: identical visit counts (domains=%d)" name domains)
          true
          (visit_counts_of seq.Explorer.stats = visit_counts_of par.Explorer.stats);
        (* without the commutation reduction both modes pay exactly the
           same replays, so the full accounting must line up too *)
        if not (config ()).Explorer.sleep_sets then
          Alcotest.(check bool)
            (Printf.sprintf "%s: identical replay accounting (domains=%d)" name domains)
            true
            (counts_of seq.Explorer.stats = counts_of par.Explorer.stats)
      end
      else begin
        Alcotest.(check bool)
          (Printf.sprintf "%s: plausible visited (domains=%d)" name domains)
          true
          (par.Explorer.stats.Budget.visited > 0
          && par.Explorer.stats.Budget.replay_steps > 0);
        (* any counterexample a parallel run reports must replay *)
        List.iter
          (fun (p : _ Property.t) ->
            match List.assoc p.Property.name par.Explorer.verdicts with
            | Explorer.Ok_bounded -> ()
            | Explorer.Violated { schedule; _ } ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s counterexample replays (domains=%d)" name
                     p.Property.name domains)
                  true
                  (Explorer.check_schedule ~sut:(mk_sut ()) ~property:p schedule <> None))
          properties
      end)
    [ 2; 4 ]

let test_parallel_pause_only () =
  cross_check ~name:"pause-only"
    ~mk_sut:(fun () -> Systems.pause_procs ~n:3)
    ~properties:[]
    ~config:(fun () ->
      Explorer.config ~prune_fingerprints:false ~sleep_sets:false ~depth:5 ())
    ()

let test_parallel_detector () =
  let params = { Setsync_detector.Kanti_omega.n = 2; t = 1; k = 1 } in
  cross_check ~name:"figure-2 detector"
    ~mk_sut:(fun () -> Systems.kanti_detector ~params ())
    ~properties:
      [
        Property.anti_omega_stabilized ~k:1
          ~outputs:(fun st -> st.Explorer.obs.Systems.fd_outputs)
          ~correct:(fun st -> Run.correct st.Explorer.run);
      ]
    ~config:(fun () -> Explorer.config ~prune_fingerprints:false ~depth:8 ())
    ()

let test_parallel_kset () =
  let problem = Setsync_agreement.Problem.make ~t:1 ~k:1 ~n:3 in
  let inputs = Setsync_agreement.Problem.distinct_inputs problem in
  let decisions st = st.Explorer.obs.Systems.decisions in
  cross_check ~name:"theorem-24 kset"
    ~mk_sut:(fun () -> Systems.kset_agreement ~problem ~inputs ())
    ~properties:
      [
        Property.kset_agreement ~k:1 ~decisions;
        Property.validity ~inputs ~decisions;
      ]
    ~config:(fun () -> Explorer.config ~prune_fingerprints:false ~depth:5 ())
    ()

(* fingerprint pruning on: prune decisions race benignly across
   domains, so only the verdicts (and counterexample replayability)
   are required to match *)
let test_parallel_fingerprints () =
  cross_check ~exact_counts:false ~name:"double-writer fp"
    ~mk_sut:double_writer_sut ~properties:[]
    ~config:(fun () -> Explorer.config ~prune_fingerprints:true ~sleep_sets:false ~depth:4 ())
    ();
  cross_check ~exact_counts:false ~name:"pipe fp"
    ~mk_sut:pipe_sut
    ~properties:[ pong_below 2; pong_le_ping ]
    ~config:(fun () -> Explorer.config ~prune_fingerprints:true ~sleep_sets:true ~depth:6 ())
    ()

(* the observation-sensitive sleep-set regression must hold under
   domains too *)
let test_parallel_sleep_safety () =
  List.iter
    (fun domains ->
      let report =
        Explorer.explore ~domains ~sut:(single_writer_sut ())
          ~properties:[ no_p2p1_suffix ]
          (Explorer.config ~prune_fingerprints:false ~sleep_sets:true ~depth:4 ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "violation found (domains=%d)" domains)
        true
        (verdict_of "no-p2p1-suffix" report <> Explorer.Ok_bounded))
    [ 1; 2; 4 ]

(* the snapshot engine under domains: each worker owns a private
   machine instance and materializes popped prefixes by machine steps;
   verdicts and (fingerprints off) visit counts must match the
   sequential snapshot run exactly *)
let test_parallel_snapshot () =
  cross_check ~name:"single-writer snapshot"
    ~mk_sut:single_writer_sut ~properties:[]
    ~config:(fun () ->
      Explorer.config ~prune_fingerprints:false ~engine:Explorer.Snapshot ~depth:4 ())
    ();
  let problem = Setsync_agreement.Problem.make ~t:1 ~k:1 ~n:3 in
  let inputs = Setsync_agreement.Problem.distinct_inputs problem in
  let decisions st = st.Explorer.obs.Systems.decisions in
  cross_check ~name:"theorem-24 kset snapshot"
    ~mk_sut:(fun () -> Systems.kset_agreement ~problem ~inputs ())
    ~properties:
      [ Property.kset_agreement ~k:1 ~decisions; Property.validity ~inputs ~decisions ]
    ~config:(fun () ->
      Explorer.config ~prune_fingerprints:false ~engine:Explorer.Snapshot ~depth:5 ())
    ()

let test_parallel_invalid_args () =
  let sut = single_writer_sut () in
  Alcotest.check_raises "domains=0 rejected"
    (Invalid_argument "Explorer.explore: domains must be >= 1") (fun () ->
      ignore (Explorer.explore ~domains:0 ~sut ~properties:[] (Explorer.config ~depth:2 ())));
  let custom () =
    { Explorer.push = (fun _ -> ()); pop = (fun () -> None); size = (fun () -> 0) }
  in
  Alcotest.check_raises "custom frontier rejected in parallel"
    (Invalid_argument
       "Explorer.explore: custom frontiers are single-domain only (the parallel engine \
        owns its work-stealing frontier)") (fun () ->
      ignore
        (Explorer.explore ~domains:2 ~sut ~properties:[]
           (Explorer.config ~strategy:(Explorer.Custom custom) ~depth:2 ())))

(* regression: the stripe index must hash the whole key. The stdlib
   default [Hashtbl.hash] stops after 10 meaningful nodes, so
   structured values differing only past that horizon collide — here
   two 20-element lists that differ only in their last element. The
   table's [full_hash] keeps going and must tell them apart. *)
let test_stripe_hash_full_width () =
  let deep = List.init 20 (fun i -> i) in
  let deep' = List.init 19 (fun i -> i) @ [ 999 ] in
  Alcotest.(check bool)
    "sanity: the default hash does collide on these" true
    (Hashtbl.hash deep = Hashtbl.hash deep');
  Alcotest.(check bool)
    "full_hash distinguishes past the truncation horizon" false
    (Parallel.Shard_tbl.full_hash deep = Parallel.Shard_tbl.full_hash deep');
  (* and prune decisions on long string keys still behave: first sight
     expands, deeper re-sight prunes, shallower re-sight expands *)
  let t = Parallel.Shard_tbl.create ~shards:4 () in
  let key = String.make 200 'x' ^ "suffix" in
  Alcotest.(check bool)
    "fresh key expands" true
    (Parallel.Shard_tbl.check_and_record t key ~depth:3);
  Alcotest.(check bool)
    "deeper re-sight prunes" false
    (Parallel.Shard_tbl.check_and_record t key ~depth:5);
  Alcotest.(check bool)
    "shallower re-sight expands" true
    (Parallel.Shard_tbl.check_and_record t key ~depth:1)

(* ------------------------------------------------------------------ *)
(* (h) path-replay engine ≡ per-state engine ≡ snapshot engine *)

(* the acceptance contract of the alternative engines: identical
   verdicts and visit counts (fingerprinting off), strictly cheaper
   replay accounting for the path engine, {e zero} replay accounting
   for the snapshot engine *)
let check_engine_equiv ~name ~mk_sut ~properties mk_config =
  let run engine =
    Explorer.explore ~sut:(mk_sut ()) ~properties (mk_config ~engine)
  in
  let state_r = run Explorer.Per_state in
  let check_matches label (other : Explorer.report) =
    Alcotest.(check (list string))
      (Printf.sprintf "%s: same violated set (%s)" name label)
      (violated_names state_r) (violated_names other);
    List.iter2
      (fun (n1, v1) (n2, v2) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: verdict %s identical (%s)" name n1 label)
          true
          (String.equal n1 n2
          &&
          match (v1, v2) with
          | Explorer.Ok_bounded, Explorer.Ok_bounded -> true
          | Explorer.Violated x, Explorer.Violated y ->
              Schedule.equal x.schedule y.schedule && String.equal x.reason y.reason
          | _ -> false))
      state_r.Explorer.verdicts other.Explorer.verdicts;
    Alcotest.(check bool)
      (Printf.sprintf "%s: identical visit counts (%s)" name label)
      true
      (visit_counts_of state_r.Explorer.stats = visit_counts_of other.Explorer.stats)
  in
  let path_r = run Explorer.Path in
  check_matches "path" path_r;
  Alcotest.(check bool)
    (Printf.sprintf "%s: path engine pays fewer replay steps" name)
    true
    (path_r.Explorer.stats.Budget.replay_steps
    <= state_r.Explorer.stats.Budget.replay_steps);
  let snap_r = run Explorer.Snapshot in
  check_matches "snapshot" snap_r;
  Alcotest.(check int)
    (Printf.sprintf "%s: snapshot engine pays zero replays" name)
    0 snap_r.Explorer.stats.Budget.replays;
  Alcotest.(check int)
    (Printf.sprintf "%s: snapshot engine pays zero replay steps" name)
    0 snap_r.Explorer.stats.Budget.replay_steps;
  (state_r, path_r, snap_r)

let test_engine_equiv_pause () =
  let state_r, path_r, _snap_r =
    check_engine_equiv ~name:"pause-only"
      ~mk_sut:(fun () -> Systems.pause_procs ~n:3)
      ~properties:[]
      (fun ~engine ->
        Explorer.config ~prune_fingerprints:false ~sleep_sets:false ~engine ~depth:5 ())
  in
  (* strict: at depth 5 over 3 never-halting processes the per-state
     engine pays Σ depth·3^depth steps, the path engine Σ over maximal
     paths *)
  Alcotest.(check bool) "strictly fewer steps" true
    (path_r.Explorer.stats.Budget.replay_steps
    < state_r.Explorer.stats.Budget.replay_steps)

let test_engine_equiv_detector () =
  let params = { Setsync_detector.Kanti_omega.n = 2; t = 1; k = 1 } in
  ignore
    (check_engine_equiv ~name:"figure-2 detector"
       ~mk_sut:(fun () -> Systems.kanti_detector ~params ())
       ~properties:
         [
           Property.anti_omega_stabilized ~k:1
             ~outputs:(fun st -> st.Explorer.obs.Systems.fd_outputs)
             ~correct:(fun st -> Run.correct st.Explorer.run);
         ]
       (fun ~engine -> Explorer.config ~prune_fingerprints:false ~engine ~depth:8 ()))

let test_engine_equiv_kset () =
  let problem = Setsync_agreement.Problem.make ~t:1 ~k:1 ~n:2 in
  let inputs = Setsync_agreement.Problem.distinct_inputs problem in
  let decisions st = st.Explorer.obs.Systems.decisions in
  let state_r, path_r, _snap_r =
    check_engine_equiv ~name:"theorem-24 kset"
      ~mk_sut:(fun () -> Systems.kset_agreement ~problem ~inputs ())
      ~properties:
        [
          Property.kset_agreement ~k:1 ~decisions;
          Property.validity ~inputs ~decisions;
        ]
      (fun ~engine -> Explorer.config ~prune_fingerprints:false ~engine ~depth:8 ())
  in
  (* the acceptance target: ≥3× fewer replay steps on the depth-8 kset
     space (deterministic counts, also pinned in bench E11e) *)
  Alcotest.(check bool) "≥3× fewer replay steps" true
    (3 * path_r.Explorer.stats.Budget.replay_steps
    <= state_r.Explorer.stats.Budget.replay_steps);
  (* the commutation+safety interplay is the risky part: the kset
     properties are state-based, so synthesis must not have materialized
     pruned prefixes — one descent replay per frontier pop only *)
  Alcotest.(check int) "safety checks cover visits and prunes"
    (path_r.Explorer.stats.Budget.visited + path_r.Explorer.stats.Budget.pruned_sleep)
    path_r.Explorer.stats.Budget.safety_checked

(* the schedule-sensitive regression (e) must hold under the path
   engine in both verdict and accounting: pruned interleavings are
   materialized (classic replays) exactly because the pending safety
   property reads the schedule *)
let test_engine_sched_sensitive_safety () =
  let report =
    Explorer.explore ~sut:(single_writer_sut ()) ~properties:[ no_p2p1_suffix ]
      (Explorer.config ~prune_fingerprints:false ~sleep_sets:true ~path_replay:true
         ~depth:4 ())
  in
  (match verdict_of "no-p2p1-suffix" report with
  | Explorer.Ok_bounded ->
      Alcotest.fail "path engine silently skipped a schedule-sensitive violation"
  | Explorer.Violated { schedule; _ } ->
      Alcotest.(check bool)
        "counterexample ends p2 then p1" true
        (match List.rev (Schedule.to_list schedule) with
        | 0 :: 1 :: _ -> true
        | _ -> false));
  let s = stats_of report in
  Alcotest.(check bool)
    "pruned states were safety-checked" true
    (s.Budget.safety_checked > s.Budget.visited)

(* the same regression under the snapshot engine: a sleep-pruned state
   is already materialized (the machine stepped into it before the
   commutation test), and must be safety-checked before the restore *)
let test_engine_snapshot_sched_sensitive () =
  let report =
    Explorer.explore ~sut:(single_writer_sut ()) ~properties:[ no_p2p1_suffix ]
      (Explorer.config ~prune_fingerprints:false ~sleep_sets:true
         ~engine:Explorer.Snapshot ~depth:4 ())
  in
  (match verdict_of "no-p2p1-suffix" report with
  | Explorer.Ok_bounded ->
      Alcotest.fail "snapshot engine silently skipped a schedule-sensitive violation"
  | Explorer.Violated _ -> ());
  let s = stats_of report in
  Alcotest.(check bool)
    "pruned states were safety-checked" true
    (s.Budget.safety_checked > s.Budget.visited);
  Alcotest.(check int) "zero replay steps" 0 s.Budget.replay_steps

(* snapshot + fingerprints: the sequential DFS visit order matches the
   per-state engine's and the digests are built by the same function
   over the same snapshot/run/obs, so the depth-refined table prunes
   identically — the hand-counted double-writer numbers from (a) hold *)
let test_engine_snapshot_fingerprint_counts () =
  let report =
    Explorer.explore ~sut:(double_writer_sut ()) ~properties:[]
      (Explorer.config ~prune_fingerprints:true ~sleep_sets:false
         ~engine:Explorer.Snapshot ~depth:4 ())
  in
  let s = stats_of report in
  Alcotest.(check int) "visited" 19 s.Budget.visited;
  Alcotest.(check int) "fp pruned" 3 s.Budget.pruned_fingerprint;
  Alcotest.(check int) "zero replays" 0 s.Budget.replays;
  Alcotest.(check int) "zero replay steps" 0 s.Budget.replay_steps

(* crash plans: the savepoint mirror (per-process step counts, crash
   records, budget checks) must reproduce executor crash accounting for
   both budget-exhausted and initially-dead processes *)
let test_engine_snapshot_fault () =
  ignore
    (check_engine_equiv ~name:"single-writer, crash after 1"
       ~mk_sut:single_writer_sut ~properties:[]
       (fun ~engine ->
         Explorer.config ~prune_fingerprints:false ~engine ~fault:[ (0, 1) ] ~depth:4 ()));
  ignore
    (check_engine_equiv ~name:"double-writer, initially dead"
       ~mk_sut:double_writer_sut ~properties:[]
       (fun ~engine ->
         Explorer.config ~prune_fingerprints:true ~engine ~fault:[ (1, 0) ] ~depth:4 ()))

(* a snapshot run interleaving pauses/restores with crashes must keep
   exact per-process step accounting: budgets hit at the same depths as
   the executor's, pinned through visit-count equality above and the
   crash-set-sensitive fingerprint here (fault plans shrink the
   admissible renaming group to budget-preserving perms) *)
let test_symmetry_respects_fault () =
  let run symmetry =
    Explorer.explore ~sut:(double_writer_sut ()) ~properties:[]
      (Explorer.config ~prune_fingerprints:true ~sleep_sets:false
         ~engine:Explorer.Snapshot ~symmetry ~fault:[ (0, 1) ] ~depth:4 ())
  in
  let off = run false and on_ = run true in
  (* the fault plan breaks the swap symmetry: the group degenerates to
     the identity and the run must not merge asymmetric states *)
  Alcotest.(check int) "same visited under asymmetric fault"
    (stats_of off).Budget.visited (stats_of on_).Budget.visited

(* ------------------------------------------------------------------ *)
(* (h') symmetry reduction: sound (verdict-equivalent) and effective *)

let not_both_done =
  Property.safety ~name:"not-both-done" (fun st ->
      let a, b = st.Explorer.obs in
      if a = 2 && b = 2 then Some "both writers finished" else None)

let test_symmetry_double_writer () =
  let run ~properties symmetry =
    Explorer.explore ~sut:(double_writer_sut ()) ~properties
      (Explorer.config ~prune_fingerprints:true ~sleep_sets:false
         ~engine:Explorer.Snapshot ~symmetry ~depth:6 ())
  in
  (* soundness: the violation is found with symmetry exactly iff it is
     found without (the first counterexample stops both runs, so the
     property run says nothing about counts) *)
  let off = run ~properties:[ not_both_done ] false
  and on_ = run ~properties:[ not_both_done ] true in
  Alcotest.(check (list string))
    "same violated set" (violated_names off) (violated_names on_);
  (* effectiveness, on the full space: the swap group merges every
     mirrored state, here exactly as discriminating as the plain
     fingerprint (registers + pcs determine each other), so the
     reduction is pure gain *)
  let off = run ~properties:[] false and on_ = run ~properties:[] true in
  Alcotest.(check bool)
    "symmetry visits strictly fewer states" true
    ((stats_of on_).Budget.visited < (stats_of off).Budget.visited);
  Alcotest.(check int) "zero replay steps" 0 (stats_of on_).Budget.replay_steps

(* soundness only: with symmetry off the plain fingerprint keys on the
   (approximate) observation while the canonical fingerprint keys on
   the exact machine payload, so the visited counts are incomparable
   by construction — what must agree is the verdict set *)
let test_symmetry_detector () =
  let params = { Setsync_detector.Kanti_omega.n = 3; t = 2; k = 2 } in
  let properties =
    [
      Property.anti_omega_stabilized ~k:2
        ~outputs:(fun st -> st.Explorer.obs.Systems.fd_outputs)
        ~correct:(fun st -> Run.correct st.Explorer.run);
    ]
  in
  let run symmetry =
    Explorer.explore
      ~sut:(Systems.kanti_detector ~params ())
      ~properties
      (Explorer.config ~prune_fingerprints:true ~engine:Explorer.Snapshot ~symmetry
         ~depth:6 ())
  in
  let off = run false and on_ = run true in
  Alcotest.(check (list string))
    "same violated set" (violated_names off) (violated_names on_);
  Alcotest.(check int) "zero replay steps" 0 (stats_of on_).Budget.replay_steps

let test_symmetry_kset () =
  let problem = Setsync_agreement.Problem.make ~t:1 ~k:1 ~n:2 in
  (* equal inputs: the admissible renaming group is input-preserving,
     so distinct inputs would degenerate it to the identity *)
  let inputs = [| 7; 7 |] in
  let decisions st = st.Explorer.obs.Systems.decisions in
  let properties =
    [ Property.kset_agreement ~k:1 ~decisions; Property.validity ~inputs ~decisions ]
  in
  let run symmetry =
    Explorer.explore
      ~sut:(Systems.kset_agreement ~problem ~inputs ())
      ~properties
      (Explorer.config ~prune_fingerprints:true ~engine:Explorer.Snapshot ~symmetry
         ~depth:8 ())
  in
  let off = run false and on_ = run true in
  Alcotest.(check (list string))
    "same violated set" (violated_names off) (violated_names on_);
  Alcotest.(check int) "zero replay steps" 0 (stats_of on_).Budget.replay_steps

let test_symmetry_requires_snapshot () =
  Alcotest.check_raises "config rejects symmetry without snapshot engine"
    (Invalid_argument "Explorer.config: symmetry reduction requires the snapshot engine")
    (fun () -> ignore (Explorer.config ~symmetry:true ~depth:4 ()))

let test_snapshot_requires_machine () =
  (* a sut without a machine form must be refused up front *)
  let sut =
    {
      Explorer.n = 2;
      fresh =
        (fun ~store:_ ->
          {
            Explorer.body = (fun _ () -> ());
            observe = (fun () -> ());
            substrate = None;
            machine = None;
          });
      obs_fingerprint = (fun () -> "");
    }
  in
  Alcotest.(check bool) "raises on missing machine form" true
    (try
       ignore
         (Explorer.explore ~sut ~properties:[]
            (Explorer.config ~engine:Explorer.Snapshot ~depth:2 ()));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* (i) budget boundary semantics: "budget of k means at most k" *)

let explore_single ~path_replay ~limits () =
  Explorer.explore ~sut:(single_writer_sut ()) ~properties:[]
    (Explorer.config ~prune_fingerprints:false ~sleep_sets:false ~path_replay ~limits
       ~depth:4 ())

let test_budget_boundaries () =
  List.iter
    (fun path_replay ->
      let label fmt =
        Printf.sprintf "%s (path_replay=%b)" fmt path_replay
      in
      let run limits = (explore_single ~path_replay ~limits ()).Explorer.stats in
      (* the space is exactly 19 states (hand-counted in (a)) *)
      let s = run (Budget.limits ~max_states:0 ()) in
      Alcotest.(check int) (label "max_states=0 visits nothing") 0 s.Budget.visited;
      Alcotest.(check bool) (label "max_states=0 truncated") true s.Budget.truncated;
      let s = run (Budget.limits ~max_states:1 ()) in
      Alcotest.(check int) (label "max_states=1 visits one") 1 s.Budget.visited;
      Alcotest.(check bool) (label "max_states=1 truncated") true s.Budget.truncated;
      let s = run (Budget.limits ~max_states:18 ()) in
      Alcotest.(check int) (label "max_states=18 visits 18") 18 s.Budget.visited;
      Alcotest.(check bool) (label "max_states=18 truncated") true s.Budget.truncated;
      (* exactly the budget: completing the space on the nose is
         exhaustive, not truncated (the old loop checked [over] before
         popping and spuriously truncated this run) *)
      let s = run (Budget.limits ~max_states:19 ()) in
      Alcotest.(check int) (label "max_states=19 visits all") 19 s.Budget.visited;
      Alcotest.(check bool) (label "max_states=19 exhaustive") false s.Budget.truncated;
      (* same contract for the step budget: the unbounded run's total is
         the exact cost of the space under this engine *)
      let total = (run Budget.unlimited).Budget.replay_steps in
      let s = run (Budget.limits ~max_replay_steps:total ()) in
      Alcotest.(check bool) (label "exact step budget exhaustive") false s.Budget.truncated;
      Alcotest.(check int) (label "exact step budget visits all") 19 s.Budget.visited;
      if path_replay then begin
        (* the incremental accounting enforces the step cap to the
           single step: one short must cut the final visit *)
        let s = run (Budget.limits ~max_replay_steps:(total - 1) ()) in
        Alcotest.(check bool) (label "one step short truncated") true s.Budget.truncated;
        Alcotest.(check bool) (label "one step short visits fewer") true
          (s.Budget.visited < 19)
      end
      else begin
        (* the per-state engine only checks between replays, so its
           overshoot is bounded by one replay — a cap short by more than
           the deepest replay must truncate *)
        let s = run (Budget.limits ~max_replay_steps:(total - 5) ()) in
        Alcotest.(check bool) (label "cap short by >1 replay truncated") true
          s.Budget.truncated;
        Alcotest.(check bool) (label "cap short by >1 replay visits fewer") true
          (s.Budget.visited < 19)
      end)
    [ false; true ]

(* the snapshot engine enforces the same visit-budget contract; its
   step budget degenerates (no replay steps are ever paid): a positive
   cap never trips, a zero cap truncates immediately like every engine *)
let test_budget_boundaries_snapshot () =
  let run limits =
    (Explorer.explore ~sut:(single_writer_sut ()) ~properties:[]
       (Explorer.config ~prune_fingerprints:false ~sleep_sets:false
          ~engine:Explorer.Snapshot ~limits ~depth:4 ()))
      .Explorer.stats
  in
  let s = run (Budget.limits ~max_states:0 ()) in
  Alcotest.(check int) "max_states=0 visits nothing" 0 s.Budget.visited;
  Alcotest.(check bool) "max_states=0 truncated" true s.Budget.truncated;
  let s = run (Budget.limits ~max_states:1 ()) in
  Alcotest.(check int) "max_states=1 visits one" 1 s.Budget.visited;
  Alcotest.(check bool) "max_states=1 truncated" true s.Budget.truncated;
  let s = run (Budget.limits ~max_states:18 ()) in
  Alcotest.(check int) "max_states=18 visits 18" 18 s.Budget.visited;
  Alcotest.(check bool) "max_states=18 truncated" true s.Budget.truncated;
  let s = run (Budget.limits ~max_states:19 ()) in
  Alcotest.(check int) "max_states=19 visits all" 19 s.Budget.visited;
  Alcotest.(check bool) "max_states=19 exhaustive" false s.Budget.truncated;
  let s = run (Budget.limits ~max_replay_steps:1 ()) in
  Alcotest.(check bool) "positive step cap never trips" false s.Budget.truncated;
  Alcotest.(check int) "positive step cap visits all" 19 s.Budget.visited;
  let s = run (Budget.limits ~max_replay_steps:0 ()) in
  Alcotest.(check bool) "zero step cap truncated" true s.Budget.truncated;
  Alcotest.(check int) "zero step cap visits nothing" 0 s.Budget.visited

(* parallel workers enforce the same contract against the shared gauge;
   overshoot is bounded by in-flight items, and an exact-budget
   completion must not be flagged truncated *)
let test_budget_boundary_parallel () =
  List.iter
    (fun domains ->
      let run limits =
        (Explorer.explore ~domains ~sut:(single_writer_sut ()) ~properties:[]
           (Explorer.config ~prune_fingerprints:false ~sleep_sets:false ~limits
              ~depth:4 ()))
          .Explorer.stats
      in
      let label fmt = Printf.sprintf "%s (domains=%d)" fmt domains in
      let s = run (Budget.limits ~max_states:0 ()) in
      Alcotest.(check int) (label "max_states=0 visits nothing") 0 s.Budget.visited;
      Alcotest.(check bool) (label "max_states=0 truncated") true s.Budget.truncated;
      let s = run (Budget.limits ~max_states:19 ()) in
      Alcotest.(check int) (label "max_states=19 visits all") 19 s.Budget.visited;
      Alcotest.(check bool) (label "max_states=19 exhaustive") false s.Budget.truncated)
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* (j) the printed report line carries every counter (S1 regression:
   safety_checked was invisible in every report) *)

let test_pp_stats_line () =
  let report =
    Explorer.explore ~sut:(single_writer_sut ()) ~properties:[ no_p2p1_suffix ]
      (Explorer.config ~prune_fingerprints:false ~sleep_sets:true ~depth:4 ())
  in
  let s = stats_of report in
  Alcotest.(check string)
    "pinned report line"
    (Printf.sprintf
       "visited %d (fp-pruned %d, commute-pruned %d, safety-checked %d) replays %d/%d \
        steps, max depth %d, frontier peak %d, exhaustive"
       s.Budget.visited s.Budget.pruned_fingerprint s.Budget.pruned_sleep
       s.Budget.safety_checked s.Budget.replays s.Budget.replay_steps s.Budget.max_depth
       s.Budget.frontier_peak)
    (Fmt.str "%a" Budget.pp_stats s);
  (* and the counter is live, not a zero placeholder *)
  Alcotest.(check bool) "safety_checked printed nonzero" true (s.Budget.safety_checked > 0)

(* ------------------------------------------------------------------ *)
(* (k) check_schedule stays a single replay across skipped steps *)

(* single-writer processes halt after 2 steps, so a schedule naming a
   process a third time forces the executor to skip the entry — the old
   probe bailed to the O(len²) per-prefix scan on the first skip *)
let test_check_schedule_skips () =
  let both_written =
    Property.safety ~name:"not-both-written" (fun st ->
        let a, b = st.Explorer.obs in
        if a = 1 && b = 1 then Some "both registers written" else None)
  in
  let schedules =
    [
      ([ 0; 0; 0; 1; 1 ], true) (* skip in the middle: still violates *);
      ([ 0; 0; 0 ], false) (* trailing skipped entry, passes *);
      ([ 0; 1; 0; 0; 1; 1; 0 ], true) (* multiple skips, violates *);
      ([ 1; 1; 1; 1 ], false) (* one writer only, trailing skips *);
    ]
  in
  List.iter
    (fun (steps, want_violation) ->
      let s = Schedule.of_list ~n:2 steps in
      let sut, count = counting_sut (single_writer_sut ()) in
      let got = Explorer.check_schedule ~sut ~property:both_written s in
      let want = reference_check ~sut:(single_writer_sut ()) ~property:both_written s in
      Alcotest.(check bool)
        (Printf.sprintf "verdict matches per-prefix scan (%s)"
           (String.concat "" (List.map string_of_int steps)))
        true
        ((got = None) = (want = None));
      Alcotest.(check bool)
        (Printf.sprintf "expected verdict (%s)"
           (String.concat "" (List.map string_of_int steps)))
        want_violation (got <> None);
      Alcotest.(check int)
        (Printf.sprintf "one instance despite skips (%s)"
           (String.concat "" (List.map string_of_int steps)))
        1 !count)
    schedules

(* ------------------------------------------------------------------ *)
(* plumbing the explorer relies on *)

let test_trace_recent () =
  let tr = Trace.create ~capacity:4 in
  Alcotest.(check bool) "empty" true (Trace.last tr = None);
  Trace.record tr ~register:"a" ~kind:Trace.Write ~value:"1";
  Trace.record tr ~register:"b" ~kind:Trace.Read ~value:"2";
  Trace.record tr ~register:"c" ~kind:Trace.Write ~value:"3";
  (match Trace.last tr with
  | Some e -> Alcotest.(check string) "last is newest" "c" e.Trace.register
  | None -> Alcotest.fail "expected an entry");
  Alcotest.(check (list string)) "recent newest-first" [ "c"; "b" ]
    (List.map (fun e -> e.Trace.register) (Trace.recent tr 2));
  Alcotest.(check (list string)) "recent capped by recorded" [ "c"; "b"; "a" ]
    (List.map (fun e -> e.Trace.register) (Trace.recent tr 10))

let test_store_snapshot () =
  let store = Store.create () in
  let a = Store.register store ~pp:Fmt.int ~name:"a" 7 in
  let _b = Store.register store ~name:"b" "opaque" in
  (match Store.snapshot store with
  | [ ("a", "7"); ("b", _) ] -> ()
  | s ->
      Alcotest.failf "unexpected snapshot %a"
        Fmt.(list (pair string string))
        s);
  Register.poke a 9;
  (match Store.snapshot store with
  | [ ("a", "9"); ("b", _) ] -> ()
  | _ -> Alcotest.fail "snapshot not live")

(* Regression for the pp-less fingerprint hole: two registers created
   without a printer but holding different values used to both render
   as "<value>", making states differing only in pp-less registers
   fingerprint-equal — an unsound prune. The rendering must be a
   structural digest: total, and distinct for distinct values. *)
let test_store_snapshot_ppless_distinct () =
  let store = Store.create () in
  let b = Store.register store ~name:"b" "one" in
  let render () = List.assoc "b" (Store.snapshot store) in
  let r1 = render () in
  Register.poke b "two";
  let r2 = render () in
  Alcotest.(check bool) "distinct values render distinctly" true (r1 <> r2);
  Register.poke b "one";
  Alcotest.(check string) "rendering is deterministic" r1 (render ())

let test_store_save_restore () =
  let store = Store.create () in
  let a = Store.register store ~pp:Fmt.int ~name:"a" 1 in
  let b = Store.register store ~name:"b" "x" in
  let restore = Store.save store in
  Register.poke a 42;
  Register.poke b "y";
  restore ();
  Alcotest.(check int) "a restored" 1 (Register.peek a);
  Alcotest.(check string) "b restored" "x" (Register.peek b)

let test_evaluate_matches_replay () =
  let sut = pipe_sut () in
  let s = Schedule.of_list ~n:2 [ 0; 1; 1; 0 ] in
  let st = Explorer.evaluate ~sut s in
  Alcotest.check schedule "executed the whole schedule" s st.Explorer.run.Run.taken;
  Alcotest.(check int) "ping" 2 st.Explorer.obs.ping;
  Alcotest.(check int) "pong" 1 st.Explorer.obs.pong

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "setsync_explore"
    [
      ( "counts",
        [
          Alcotest.test_case "brute force, hand-counted" `Quick test_count_brute;
          Alcotest.test_case "commutation reduction" `Quick test_count_sleep;
          Alcotest.test_case "double writer, brute" `Quick test_count_double_brute;
          Alcotest.test_case "double writer, fingerprints" `Quick
            test_count_double_fingerprint;
        ] );
      ( "reductions",
        [
          Alcotest.test_case "verdicts preserved vs brute force" `Quick
            test_pruning_preserves_verdicts;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "1-minimal counterexample" `Quick test_shrink_minimal;
          Alcotest.test_case "synthetic ddmin" `Quick test_shrink_synthetic;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fixed seed and budget" `Quick test_deterministic;
          Alcotest.test_case "unbounded run is exhaustive" `Quick
            test_exhaustive_when_unbounded;
          Alcotest.test_case "wall-clock budget" `Slow test_wall_clock_budget;
        ] );
      ( "sleep-set safety",
        [
          Alcotest.test_case "pruned interleavings are safety-checked" `Quick
            test_sleep_set_safety_checked;
        ] );
      ( "check_schedule",
        [
          Alcotest.test_case "one replay per safety check" `Quick
            test_check_schedule_single_replay;
          Alcotest.test_case "shrinking replay count" `Quick test_shrink_replay_count;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "pause-only cross-check" `Quick test_parallel_pause_only;
          Alcotest.test_case "figure-2 detector cross-check" `Quick
            test_parallel_detector;
          Alcotest.test_case "theorem-24 kset cross-check" `Quick test_parallel_kset;
          Alcotest.test_case "fingerprint pruning cross-check" `Quick
            test_parallel_fingerprints;
          Alcotest.test_case "sleep-set safety under domains" `Quick
            test_parallel_sleep_safety;
          Alcotest.test_case "snapshot engine cross-check" `Quick
            test_parallel_snapshot;
          Alcotest.test_case "invalid arguments" `Quick test_parallel_invalid_args;
          Alcotest.test_case "stripe hash is full-width" `Quick
            test_stripe_hash_full_width;
        ] );
      ( "path-replay engine",
        [
          Alcotest.test_case "pause-only equivalence" `Quick test_engine_equiv_pause;
          Alcotest.test_case "figure-2 detector equivalence" `Quick
            test_engine_equiv_detector;
          Alcotest.test_case "theorem-24 kset equivalence, ≥3× fewer steps" `Quick
            test_engine_equiv_kset;
          Alcotest.test_case "schedule-sensitive safety materialized" `Quick
            test_engine_sched_sensitive_safety;
          Alcotest.test_case "snapshot: schedule-sensitive safety" `Quick
            test_engine_snapshot_sched_sensitive;
          Alcotest.test_case "snapshot: hand-counted fingerprints" `Quick
            test_engine_snapshot_fingerprint_counts;
          Alcotest.test_case "snapshot: crash plans equivalent" `Quick
            test_engine_snapshot_fault;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "double writer: sound and effective" `Quick
            test_symmetry_double_writer;
          Alcotest.test_case "figure-2 detector: verdicts agree" `Quick
            test_symmetry_detector;
          Alcotest.test_case "theorem-24 kset: sound and effective" `Quick
            test_symmetry_kset;
          Alcotest.test_case "asymmetric fault degenerates group" `Quick
            test_symmetry_respects_fault;
          Alcotest.test_case "requires snapshot engine" `Quick
            test_symmetry_requires_snapshot;
          Alcotest.test_case "snapshot requires machine form" `Quick
            test_snapshot_requires_machine;
        ] );
      ( "budget boundaries",
        [
          Alcotest.test_case "at most k, exact k exhaustive" `Quick
            test_budget_boundaries;
          Alcotest.test_case "snapshot engine boundaries" `Quick
            test_budget_boundaries_snapshot;
          Alcotest.test_case "parallel gauge boundaries" `Quick
            test_budget_boundary_parallel;
        ] );
      ( "report line",
        [ Alcotest.test_case "pp_stats pins every counter" `Quick test_pp_stats_line ] );
      ( "check_schedule skips",
        [
          Alcotest.test_case "single replay across skipped steps" `Quick
            test_check_schedule_skips;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "trace last/recent" `Quick test_trace_recent;
          Alcotest.test_case "store snapshot" `Quick test_store_snapshot;
          Alcotest.test_case "pp-less snapshot digests distinct" `Quick
            test_store_snapshot_ppless_distinct;
          Alcotest.test_case "store save/restore" `Quick test_store_save_restore;
          Alcotest.test_case "evaluate replays faithfully" `Quick
            test_evaluate_matches_replay;
        ] );
    ]
