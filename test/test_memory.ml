(* Tests for the shared-memory substrate: registers, stores, traces. *)

module Register = Setsync_memory.Register
module Store = Setsync_memory.Store
module Trace = Setsync_memory.Trace

let test_register_read_write () =
  let r = Register.make ~name:"r" ~id:0 5 in
  Alcotest.(check int) "initial" 5 (Register.read r);
  Register.write r 9;
  Alcotest.(check int) "after write" 9 (Register.read r);
  Alcotest.(check int) "reads counted" 2 (Register.reads r);
  Alcotest.(check int) "writes counted" 1 (Register.writes r)

let test_register_peek_poke_uncounted () =
  let r = Register.make ~name:"r" ~id:0 1 in
  Register.poke r 7;
  Alcotest.(check int) "poked" 7 (Register.peek r);
  Alcotest.(check int) "no reads" 0 (Register.reads r);
  Alcotest.(check int) "no writes" 0 (Register.writes r)

let test_register_polymorphic () =
  let r = Register.make ~name:"opt" ~id:1 (None : (int * string) option) in
  Register.write r (Some (3, "x"));
  Alcotest.(check bool) "holds structured value" true (Register.read r = Some (3, "x"))

let test_store_allocation () =
  let store = Store.create () in
  let a = Store.register store ~name:"a" 0 in
  let b = Store.register store ~name:"b" 0 in
  Alcotest.(check int) "ids distinct" 1 (Register.id b - Register.id a);
  Alcotest.(check int) "count" 2 (Store.register_count store);
  ignore (Register.read a);
  Register.write b 1;
  Alcotest.(check int) "total reads" 1 (Store.total_reads store);
  Alcotest.(check int) "total writes" 1 (Store.total_writes store)

let test_store_array_matrix () =
  let store = Store.create () in
  let arr = Store.array store ~name:"v" 4 (fun i -> i * 10) in
  Alcotest.(check int) "array size" 4 (Array.length arr);
  Alcotest.(check int) "init by index" 30 (Register.peek arr.(3));
  Alcotest.(check string) "named" "v[2]" (Register.name arr.(2));
  let m = Store.matrix store ~name:"m" ~rows:2 ~cols:3 (fun r c -> (r * 10) + c) in
  Alcotest.(check int) "matrix value" 12 (Register.peek m.(1).(2));
  Alcotest.(check string) "matrix name" "m[1][2]" (Register.name m.(1).(2));
  Alcotest.(check int) "register count" 10 (Store.register_count store)

let test_trace_records () =
  let trace = Trace.create ~capacity:16 in
  let store = Store.create ~trace () in
  let r = Store.register store ~pp:Fmt.int ~name:"r" 0 in
  Register.write r 42;
  ignore (Register.read r);
  let entries = Trace.entries trace in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  (match entries with
  | [ w; rd ] ->
      Alcotest.(check string) "write value printed" "42" w.Trace.value;
      Alcotest.(check bool) "kinds" true (w.Trace.kind = Trace.Write && rd.Trace.kind = Trace.Read)
  | _ -> Alcotest.fail "expected two entries");
  Alcotest.(check int) "recorded total" 2 (Trace.recorded trace)

let test_trace_ring_capacity () =
  let trace = Trace.create ~capacity:4 in
  for i = 1 to 10 do
    Trace.record trace ~register:"r" ~kind:Trace.Write ~value:(string_of_int i)
  done;
  let entries = Trace.entries trace in
  Alcotest.(check int) "capped" 4 (List.length entries);
  Alcotest.(check (list string)) "keeps most recent, oldest first" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.value) entries);
  Alcotest.(check int) "recorded total uncapped" 10 (Trace.recorded trace);
  Trace.clear trace;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.entries trace))

let test_trace_disabled_by_default () =
  let store = Store.create () in
  Alcotest.(check bool) "no trace" true (Store.trace store = None)

let test_trace_invalid_capacity () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Trace.create: capacity must be positive")
    (fun () -> ignore (Trace.create ~capacity:0))

(* Pin last/recent/clear across wraparound: entries is oldest first,
   recent is newest first, and clear makes the trace behave exactly as
   freshly created (recorded resets, sequence numbers restart). *)
let test_trace_last_recent_wraparound () =
  let trace = Trace.create ~capacity:4 in
  Alcotest.(check bool) "last on empty" true (Trace.last trace = None);
  Alcotest.(check int) "recent on empty" 0 (List.length (Trace.recent trace 3));
  for i = 1 to 10 do
    Trace.record trace ~register:"r" ~kind:Trace.Write ~value:(string_of_int i)
  done;
  (match Trace.last trace with
  | Some e ->
      Alcotest.(check string) "last is newest" "10" e.Trace.value;
      Alcotest.(check int) "last seq" 9 e.Trace.seq
  | None -> Alcotest.fail "last after records");
  Alcotest.(check (list string)) "recent newest first" [ "10"; "9"; "8" ]
    (List.map (fun e -> e.Trace.value) (Trace.recent trace 3));
  Alcotest.(check (list string)) "recent capped at retention" [ "10"; "9"; "8"; "7" ]
    (List.map (fun e -> e.Trace.value) (Trace.recent trace 100));
  Alcotest.(check (list string)) "entries oldest first = reversed recent"
    (List.rev (List.map (fun e -> e.Trace.value) (Trace.recent trace 4)))
    (List.map (fun e -> e.Trace.value) (Trace.entries trace))

let test_trace_clear_resets () =
  let trace = Trace.create ~capacity:4 in
  for i = 1 to 6 do
    Trace.record trace ~register:"r" ~kind:Trace.Read ~value:(string_of_int i)
  done;
  Trace.clear trace;
  Alcotest.(check int) "recorded reset" 0 (Trace.recorded trace);
  Alcotest.(check bool) "last cleared" true (Trace.last trace = None);
  Alcotest.(check int) "recent cleared" 0 (List.length (Trace.recent trace 4));
  (* records after clear start a fresh sequence, exactly as after create *)
  Trace.record trace ~register:"r" ~kind:Trace.Write ~value:"fresh";
  Alcotest.(check int) "recorded restarts" 1 (Trace.recorded trace);
  match Trace.last trace with
  | Some e ->
      Alcotest.(check int) "seq restarts at 0" 0 e.Trace.seq;
      Alcotest.(check string) "value" "fresh" e.Trace.value
  | None -> Alcotest.fail "last after clear+record"

let test_trace_unprintable_value () =
  let trace = Trace.create ~capacity:4 in
  let store = Store.create ~trace () in
  let r = Store.register store ~name:"r" 0 in
  (* no pp provided *)
  Register.write r 3;
  match Trace.entries trace with
  | [ e ] -> Alcotest.(check string) "placeholder" "<value>" e.Trace.value
  | _ -> Alcotest.fail "expected one entry"

let () =
  Alcotest.run "setsync_memory"
    [
      ( "register",
        [
          Alcotest.test_case "read/write" `Quick test_register_read_write;
          Alcotest.test_case "peek/poke uncounted" `Quick test_register_peek_poke_uncounted;
          Alcotest.test_case "polymorphic values" `Quick test_register_polymorphic;
        ] );
      ( "store",
        [
          Alcotest.test_case "allocation" `Quick test_store_allocation;
          Alcotest.test_case "array/matrix" `Quick test_store_array_matrix;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records operations" `Quick test_trace_records;
          Alcotest.test_case "ring capacity" `Quick test_trace_ring_capacity;
          Alcotest.test_case "last/recent across wraparound" `Quick
            test_trace_last_recent_wraparound;
          Alcotest.test_case "clear resets to fresh" `Quick test_trace_clear_resets;
          Alcotest.test_case "disabled by default" `Quick test_trace_disabled_by_default;
          Alcotest.test_case "invalid capacity" `Quick test_trace_invalid_capacity;
          Alcotest.test_case "value without printer" `Quick test_trace_unprintable_value;
        ] );
    ]
