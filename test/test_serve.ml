(* Tests for the multi-tenant scenario server (lib/serve).

   Conformance: a served run — the one-shot harness suspended
   cooperatively every few work units — must render byte-identical
   results and metrics counters to the plain one-shot run, on both
   backends. Store properties: randomized open/close/find/drain
   interleavings against a model never lose, duplicate, or cross-wire
   sessions, and the sessions_active gauge tracks ground truth after
   every operation. Soak: waves of sessions reuse slots (memory and
   capacity stay flat), and a crashed session is reaped without
   stalling its batch. Scoping: two concurrent explore sessions keep
   their counters apart. *)

module Json = Setsync_obs.Json
module Metrics = Setsync_obs.Metrics
module Session = Setsync_serve.Session
module Shard = Setsync_serve.Shard
module Batch = Setsync_serve.Batch
module Server = Setsync_serve.Server
open Setsync

let jstr = Json.to_string

let get_int name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some v -> v
  | None -> Alcotest.failf "reply %s: missing int %s" (jstr j) name

let get_str name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some v -> v
  | None -> Alcotest.failf "reply %s: missing string %s" (jstr j) name

let get_field name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "reply %s: missing field %s" (jstr j) name

let is_ok j = match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false

let req fields = Json.Obj (("op", Json.String (List.assoc "op" fields |> function Json.String s -> s | _ -> assert false)) :: List.remove_assoc "op" fields)

let handle_ok srv fields =
  let r = Server.handle srv (req fields) in
  if not (is_ok r) then Alcotest.failf "request failed: %s" (jstr r);
  r

let op name rest = ("op", Json.String name) :: rest

(* ------------------------------------------------------ conformance *)

(* Drive one spec through the server with a deliberately awkward
   quantum, then compare render and counters against the one-shot. *)
let check_conformance ?(quantum = 997) spec =
  let srv = Server.create ~quantum () in
  let opened = handle_ok srv (op "open" [ ("spec", Session.spec_to_json spec) ]) in
  let sid = get_int "sid" opened in
  let rec drive budget =
    if budget = 0 then Alcotest.fail "session did not finish";
    let r = handle_ok srv (op "step" [ ("sid", Json.Int sid) ]) in
    match get_str "status" r with
    | "running" -> drive (budget - 1)
    | "done" -> ()
    | other -> Alcotest.failf "session ended %s" other
  in
  drive 1_000_000;
  let served_render =
    get_field "result" (handle_ok srv (op "result" [ ("sid", Json.Int sid) ]))
  in
  let served_counters =
    get_field "counters" (handle_ok srv (op "metrics" [ ("sid", Json.Int sid) ]))
  in
  ignore (handle_ok srv (op "close" [ ("sid", Json.Int sid) ]));
  let render, obs = Session.run_oneshot spec in
  Alcotest.(check string)
    (Fmt.str "%s/%s render" (Session.kind_name spec.Session.kind)
       (Session.backend_name spec.Session.backend))
    (jstr render) (jstr served_render);
  Alcotest.(check string)
    (Fmt.str "%s/%s counters" (Session.kind_name spec.Session.kind)
       (Session.backend_name spec.Session.backend))
    (jstr (Session.counters_json obs))
    (jstr served_counters)

let fd_shm_spec () =
  { (Session.default Session.Fd) with Session.t = 1; k = 1; n = 4; max_steps = 30_000 }

let fd_net_spec () =
  {
    (Session.default Session.Fd) with
    Session.backend = Session.Net;
    n = 3;
    max_steps = 4_000;
  }

let solve_shm_spec () =
  { (Session.default Session.Solve) with Session.t = 1; k = 1; n = 4; max_steps = 50_000 }

let solve_net_spec () =
  { (Session.default Session.Solve) with Session.backend = Session.Net; n = 3; k = 1 }

let fuzz_shm_spec () =
  { (Session.default Session.Fuzz) with Session.execs = 150; len = 32; seed = 5 }

let fuzz_net_spec () =
  {
    (Session.default Session.Fuzz) with
    Session.backend = Session.Net;
    n = 3;
    k = 1;
    execs = 40;
    len = 42;
    seed = 3;
  }

let explore_shm_spec () =
  { (Session.default Session.Explore) with Session.t = 1; k = 1; n = 3; depth = 5 }

let explore_net_spec () =
  {
    (Session.default Session.Explore) with
    Session.backend = Session.Net;
    n = 2;
    t = 0;
    k = 1;
    depth = 4;
  }

let conformance spec () = check_conformance (spec ())

(* a tiny quantum forces thousands of suspend/resume cycles — the
   coroutine machinery itself must not perturb the run *)
let test_conformance_tiny_quantum () =
  check_conformance ~quantum:7
    { (fd_shm_spec ()) with Session.max_steps = 3_000 }

(* served runs of the same spec are deterministic across server
   instances and across quanta *)
let test_quantum_invariance () =
  let spec = { (fuzz_shm_spec ()) with Session.execs = 60 } in
  let render_with quantum =
    let srv = Server.create ~quantum () in
    let opened = handle_ok srv (op "open" [ ("spec", Session.spec_to_json spec) ]) in
    let sid = get_int "sid" opened in
    ignore (handle_ok srv (op "run" [ ("sid", Json.Int sid) ]));
    jstr (get_field "result" (handle_ok srv (op "result" [ ("sid", Json.Int sid) ])))
  in
  let a = render_with 13 and b = render_with 4096 in
  Alcotest.(check string) "quantum does not leak into results" a b

(* ------------------------------------------------- store properties *)

let test_shard_model seed () =
  let rng = Rng.create ~seed in
  let metrics = Metrics.create () in
  let store = Shard.create ~shards:4 ~capacity:8 ~metrics () in
  let gauge () =
    match Metrics.gauge_value (Metrics.gauge metrics "serve.sessions_active") with
    | Some v -> int_of_float v
    | None -> Alcotest.fail "sessions_active gauge never set"
  in
  let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let live = ref [] in
  let payload = ref 0 in
  let check_invariants () =
    Alcotest.(check int) "gauge = ground truth" (Hashtbl.length model) (gauge ());
    Alcotest.(check int) "active = ground truth" (Hashtbl.length model)
      (Shard.active store);
    (* no lost or cross-wired sessions: every modeled sid resolves to
       its own payload *)
    Hashtbl.iter
      (fun sid v ->
        match Shard.find store sid with
        | Some v' -> Alcotest.(check int) (Fmt.str "payload of sid %d" sid) v v'
        | None -> Alcotest.failf "sid %d lost" sid)
      model;
    (* sorted sid list matches the model exactly: no duplicates, no
       ghosts *)
    let expect = List.sort compare (Hashtbl.fold (fun sid _ acc -> sid :: acc) model []) in
    Alcotest.(check (list int)) "sids" expect (Shard.sids store)
  in
  for _ = 1 to 400 do
    (match Rng.int rng 100 with
    | r when r < 45 ->
        incr payload;
        let sid = Shard.add store !payload in
        Alcotest.(check bool) "fresh sid" false (Hashtbl.mem model sid);
        Hashtbl.replace model sid !payload;
        live := sid :: !live
    | r when r < 75 && !live <> [] ->
        let sid = Rng.pick rng !live in
        let expected = Hashtbl.find_opt model sid in
        let got = Shard.remove store sid in
        Alcotest.(check (option int)) "remove returns payload" expected got;
        Hashtbl.remove model sid;
        live := List.filter (fun s -> s <> sid) !live
    | r when r < 85 ->
        (* stale / never-issued sids miss cleanly *)
        let sid = Rng.int rng (!payload + 50) in
        if not (Hashtbl.mem model sid) then begin
          Alcotest.(check (option int)) "stale find" None (Shard.find store sid);
          Alcotest.(check (option int)) "stale remove" None (Shard.remove store sid)
        end
    | r when r < 97 && !live <> [] ->
        let sid = Rng.pick rng !live in
        Alcotest.(check (option int))
          "find" (Hashtbl.find_opt model sid) (Shard.find store sid)
    | _ ->
        let drained = ref 0 in
        let n = Shard.drain store ~f:(fun ~sid:_ _ -> incr drained) in
        Alcotest.(check int) "drain count" (Hashtbl.length model) n;
        Alcotest.(check int) "drain callback count" n !drained;
        Hashtbl.reset model;
        live := []);
    check_invariants ()
  done

(* sids are never reused even across heavy churn: a removed sid stays
   dead forever *)
let test_sid_never_reused () =
  let store = Shard.create ~shards:2 ~capacity:2 () in
  let seen = Hashtbl.create 256 in
  for v = 1 to 200 do
    let sid = Shard.add store v in
    Alcotest.(check bool) (Fmt.str "sid %d fresh" sid) false (Hashtbl.mem seen sid);
    Hashtbl.replace seen sid ();
    ignore (Shard.remove store sid)
  done;
  Hashtbl.iter
    (fun sid () -> Alcotest.(check (option int)) "dead sid" None (Shard.find store sid))
    seen

(* --------------------------------------------------------- soak/leak *)

let spin_spec ?fail_after max_steps =
  { (Session.default Session.Spin) with Session.n = 2; max_steps; fail_after }

let test_soak_slot_reuse () =
  let srv = Server.create ~shards:4 ~capacity:64 ~quantum:256 () in
  let store = Server.store srv in
  let wave () =
    ignore
      (handle_ok srv
         (op "open-batch"
            [
              ("spec", Session.spec_to_json (spin_spec 300)); ("count", Json.Int 200);
            ]));
    ignore (handle_ok srv (op "run" []));
    ignore (handle_ok srv (op "drain" []));
    Alcotest.(check int) "store empty after wave" 0 (Shard.active store)
  in
  wave ();
  Gc.full_major ();
  let baseline_words = Obj.reachable_words (Obj.repr store) in
  let baseline_capacity = Shard.capacity store in
  for w = 2 to 5 do
    wave ();
    Gc.full_major ();
    let words = Obj.reachable_words (Obj.repr store) in
    if words > baseline_words + (baseline_words / 10) then
      Alcotest.failf "wave %d: store grew %d -> %d reachable words" w baseline_words
        words;
    Alcotest.(check int)
      (Fmt.str "wave %d: capacity flat (slot reuse)" w)
      baseline_capacity (Shard.capacity store)
  done

let test_crashed_session_reaped () =
  let srv = Server.create ~quantum:64 () in
  let store = Server.store srv in
  let open_one spec =
    get_int "sid" (handle_ok srv (op "open" [ ("spec", Session.spec_to_json spec) ]))
  in
  let healthy = List.init 4 (fun _ -> open_one (spin_spec 2_000)) in
  let doomed = open_one (spin_spec ~fail_after:300 100_000) in
  let r = handle_ok srv (op "run" []) in
  (* the crash surfaced in an outcome and the victim left the store *)
  let failed_sids =
    match get_field "failed" r with
    | Json.List l -> List.map (get_int "sid") l
    | _ -> []
  in
  Alcotest.(check (list int)) "doomed sid reaped" [ doomed ] failed_sids;
  Alcotest.(check (option unit)) "reaped from store" None
    (Option.map ignore (Shard.find store doomed));
  (* the reap didn't stall the batch: everyone else ran to completion *)
  List.iter
    (fun sid ->
      let r = handle_ok srv (op "result" [ ("sid", Json.Int sid) ]) in
      Alcotest.(check int) "healthy steps" 2_000 (get_int "steps" (get_field "result" r)))
    healthy;
  (* the tombstone makes the failure diagnosable after the fact *)
  let r = Server.handle srv (req (op "result" [ ("sid", Json.Int doomed) ])) in
  Alcotest.(check bool) "tombstoned result is an error" false (is_ok r);
  let msg = get_str "error" r in
  Alcotest.(check bool) "tombstone names the failure" true
    (let has_sub s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has_sub msg "injected spin failure")

(* ------------------------------------------------- counter scoping *)

(* Two explore sessions stepped concurrently (interleaved rounds on one
   server) must each end with exactly the counters of their own
   one-shot run — the regression for the single-session assumption in
   the global --progress/search-summary counters. *)
let test_concurrent_explore_scoped () =
  let spec_a = explore_shm_spec () in
  let spec_b = { (explore_shm_spec ()) with Session.seed = 7; n = 3; depth = 4 } in
  let srv = Server.create ~quantum:50 () in
  let open_one spec =
    get_int "sid" (handle_ok srv (op "open" [ ("spec", Session.spec_to_json spec) ]))
  in
  let sid_a = open_one spec_a and sid_b = open_one spec_b in
  (* interleave: both advance within every round *)
  ignore (handle_ok srv (op "run" [ ("quantum", Json.Int 50) ]));
  let counters sid =
    jstr (get_field "counters" (handle_ok srv (op "metrics" [ ("sid", Json.Int sid) ])))
  in
  let render sid =
    jstr (get_field "result" (handle_ok srv (op "result" [ ("sid", Json.Int sid) ])))
  in
  let render_a, counters_a = (render sid_a, counters sid_a) in
  let render_b, counters_b = (render sid_b, counters sid_b) in
  let one_a, obs_a = Session.run_oneshot spec_a in
  let one_b, obs_b = Session.run_oneshot spec_b in
  Alcotest.(check string) "A render scoped" (jstr one_a) render_a;
  Alcotest.(check string) "B render scoped" (jstr one_b) render_b;
  Alcotest.(check string) "A counters scoped" (jstr (Session.counters_json obs_a))
    counters_a;
  Alcotest.(check string) "B counters scoped" (jstr (Session.counters_json obs_b))
    counters_b;
  (* sanity: the two sessions did different amounts of work, so a
     cross-wire would have been visible *)
  Alcotest.(check bool) "A and B differ" false (String.equal counters_a counters_b)

(* ----------------------------------------------------- protocol edge *)

let test_protocol_errors () =
  let srv = Server.create () in
  let fails fields = Alcotest.(check bool) "is error" false (is_ok (Server.handle srv (req fields))) in
  fails (op "step" [ ("sid", Json.Int 99) ]);
  fails (op "result" [ ("sid", Json.Int 99) ]);
  fails (op "open" []);
  fails (op "open" [ ("spec", Json.Obj [ ("kind", Json.String "nope") ]) ]);
  fails (op "open" [ ("spec", Json.Obj [ ("kind", Json.String "fd"); ("n", Json.Int 0) ]) ]);
  fails (op "frobnicate" []);
  let hello = handle_ok srv (op "hello" []) in
  Alcotest.(check string) "schema" Server.schema (get_str "schema" hello)

let test_spec_json_roundtrip () =
  let specs =
    [
      fd_shm_spec (); fd_net_spec (); solve_shm_spec (); solve_net_spec ();
      fuzz_shm_spec (); fuzz_net_spec (); explore_shm_spec (); explore_net_spec ();
      spin_spec ~fail_after:3 100;
    ]
  in
  List.iter
    (fun spec ->
      match Session.spec_of_json (Session.spec_to_json spec) with
      | Ok spec' ->
          Alcotest.(check string) "spec roundtrip"
            (jstr (Session.spec_to_json spec))
            (jstr (Session.spec_to_json spec'))
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    specs;
  (* unknown fields tolerated, absent fields defaulted *)
  match
    Session.spec_of_json
      (Json.Obj
         [
           ("kind", Json.String "fuzz");
           ("future_field", Json.String "ignored");
           ("execs", Json.Int 7);
         ])
  with
  | Ok s ->
      Alcotest.(check int) "execs decoded" 7 s.Session.execs;
      Alcotest.(check int) "n defaulted" 2 s.Session.n
  | Error e -> Alcotest.failf "tolerant decode failed: %s" e

let () =
  Alcotest.run "serve"
    [
      ( "conformance",
        [
          Alcotest.test_case "fd shm" `Quick (conformance fd_shm_spec);
          Alcotest.test_case "fd net" `Quick (conformance fd_net_spec);
          Alcotest.test_case "solve shm" `Quick (conformance solve_shm_spec);
          Alcotest.test_case "solve net" `Quick (conformance solve_net_spec);
          Alcotest.test_case "fuzz shm" `Quick (conformance fuzz_shm_spec);
          Alcotest.test_case "fuzz net" `Quick (conformance fuzz_net_spec);
          Alcotest.test_case "explore shm" `Quick (conformance explore_shm_spec);
          Alcotest.test_case "explore net" `Quick (conformance explore_net_spec);
          Alcotest.test_case "tiny quantum" `Quick test_conformance_tiny_quantum;
          Alcotest.test_case "quantum invariance" `Quick test_quantum_invariance;
        ] );
      ( "store",
        [
          Alcotest.test_case "model interleavings (seed 11)" `Quick (test_shard_model 11);
          Alcotest.test_case "model interleavings (seed 23)" `Quick (test_shard_model 23);
          Alcotest.test_case "model interleavings (seed 47)" `Quick (test_shard_model 47);
          Alcotest.test_case "sids never reused" `Quick test_sid_never_reused;
        ] );
      ( "soak",
        [
          Alcotest.test_case "slot reuse keeps memory flat" `Quick test_soak_slot_reuse;
          Alcotest.test_case "crashed session reaped" `Quick test_crashed_session_reaped;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "two concurrent explores" `Quick
            test_concurrent_explore_scoped;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "errors are replies" `Quick test_protocol_errors;
          Alcotest.test_case "spec json roundtrip" `Quick test_spec_json_roundtrip;
        ] );
    ]
