(* Tests for the agreement layer: problem definitions, the run checker,
   shared-memory Paxos (safety under random schedules and crashes,
   liveness under a unique proposer), the trivial t<k algorithm, the
   Theorem 24 k-set solver, and the adaptive adversary's boundary. *)

open Setsync_schedule
module Problem = Setsync_agreement.Problem
module Checker = Setsync_agreement.Checker
module Paxos = Setsync_agreement.Paxos
module Trivial = Setsync_agreement.Trivial
module Kset_solver = Setsync_agreement.Kset_solver
module Ag_harness = Setsync_agreement.Ag_harness
module Adaptive = Setsync_agreement.Adaptive
module Store = Setsync_memory.Store
module Shm = Setsync_runtime.Shm
module Executor = Setsync_runtime.Executor
module Run = Setsync_runtime.Run

(* ------------------------------------------------------------------ *)
(* Problem *)

let test_problem_make () =
  let p = Problem.make ~t:2 ~k:3 ~n:5 in
  Alcotest.(check string) "pp" "(2,3,5)-agreement" (Problem.to_string p);
  Alcotest.(check bool) "trivially solvable" true (Problem.is_trivially_solvable p);
  Alcotest.(check bool) "consensus not trivial" false
    (Problem.is_trivially_solvable (Problem.consensus ~t:1 ~n:3));
  let wf = Problem.wait_free ~k:2 ~n:4 in
  Alcotest.(check bool) "wait-free t" true (Problem.equal wf (Problem.make ~t:3 ~k:2 ~n:4));
  Alcotest.check_raises "t out of range"
    (Invalid_argument "Problem.make: need 1 <= t(4) <= n-1(3)") (fun () ->
      ignore (Problem.make ~t:4 ~k:1 ~n:4))

let test_problem_strengthen () =
  let p = Problem.make ~t:2 ~k:2 ~n:5 in
  (match Problem.strengthen_resilience p with
  | Some p' -> Alcotest.(check bool) "t+1" true (Problem.equal p' (Problem.make ~t:3 ~k:2 ~n:5))
  | None -> Alcotest.fail "should exist");
  (match Problem.strengthen_agreement p with
  | Some p' -> Alcotest.(check bool) "k-1" true (Problem.equal p' (Problem.make ~t:2 ~k:1 ~n:5))
  | None -> Alcotest.fail "should exist");
  Alcotest.(check bool) "no k=0" true
    (Problem.strengthen_agreement (Problem.consensus ~t:1 ~n:3) = None);
  Alcotest.(check bool) "no t=n" true
    (Problem.strengthen_resilience (Problem.wait_free ~k:1 ~n:3) = None)

let test_problem_inputs () =
  let p = Problem.make ~t:1 ~k:1 ~n:4 in
  Alcotest.(check (array int)) "distinct" [| 100; 101; 102; 103 |] (Problem.distinct_inputs p);
  let rng = Rng.create ~seed:1 in
  Array.iter
    (fun v -> Alcotest.(check bool) "binary" true (v = 0 || v = 1))
    (Problem.binary_inputs p ~rng);
  Array.iter
    (fun v -> Alcotest.(check bool) "spread" true (v >= 0 && v < 7))
    (Problem.random_inputs p ~rng ~spread:7)

(* ------------------------------------------------------------------ *)
(* Checker *)

let problem223 = Problem.make ~t:2 ~k:2 ~n:3

let test_checker_all_good () =
  let r =
    Checker.check ~problem:problem223 ~inputs:[| 1; 2; 3 |]
      ~decisions:[| Some 1; Some 1; Some 2 |] ~crashed:Procset.empty ()
  in
  Alcotest.(check bool) "ok" true (Checker.ok r);
  Alcotest.(check int) "distinct" 2 r.Checker.distinct_values;
  Alcotest.(check int) "decided" 3 r.Checker.decided_count

let test_checker_validity_violation () =
  let r =
    Checker.check ~problem:problem223 ~inputs:[| 1; 2; 3 |]
      ~decisions:[| Some 9; None; None |] ~crashed:Procset.empty ()
  in
  Alcotest.(check bool) "invalid" false r.Checker.validity;
  Alcotest.(check bool) "not ok" false (Checker.ok r)

let test_checker_agreement_violation () =
  let r =
    Checker.check ~problem:problem223 ~inputs:[| 1; 2; 3 |]
      ~decisions:[| Some 1; Some 2; Some 3 |] ~crashed:Procset.empty ()
  in
  Alcotest.(check bool) "3 > k = 2" false r.Checker.agreement;
  Alcotest.(check bool) "safe reflects both" false (Checker.safe r)

let test_checker_uniformity () =
  (* a crashed process's decision still counts against k *)
  let r =
    Checker.check ~problem:(Problem.make ~t:2 ~k:1 ~n:3) ~inputs:[| 1; 2; 3 |]
      ~decisions:[| Some 1; Some 2; None |] ~crashed:(Procset.singleton 0) ()
  in
  Alcotest.(check bool) "uniform agreement violated" false r.Checker.agreement

let test_checker_termination () =
  let r =
    Checker.check ~problem:problem223 ~inputs:[| 1; 2; 3 |]
      ~decisions:[| Some 1; None; Some 1 |] ~crashed:Procset.empty ()
  in
  (match r.Checker.termination with
  | Checker.Undecided s -> Alcotest.(check bool) "p2 undecided" true (Procset.mem 1 s)
  | _ -> Alcotest.fail "expected undecided");
  (* crashed undecided is fine *)
  let r2 =
    Checker.check ~problem:problem223 ~inputs:[| 1; 2; 3 |]
      ~decisions:[| Some 1; None; Some 1 |] ~crashed:(Procset.singleton 1) ()
  in
  Alcotest.(check bool) "crashed excused" true (Checker.ok r2);
  (* more than t crashes: vacuous *)
  let r3 =
    Checker.check ~problem:problem223 ~inputs:[| 1; 2; 3 |] ~decisions:[| None; None; None |]
      ~crashed:(Procset.full ~n:3) ()
  in
  match r3.Checker.termination with
  | Checker.Vacuous 3 -> ()
  | _ -> Alcotest.fail "expected vacuous"

let test_checker_starvation () =
  (* a starved process counts as faulty: within budget it is excused,
     beyond budget the promise is vacuous *)
  let r =
    Checker.check ~problem:(Problem.make ~t:1 ~k:2 ~n:3) ~inputs:[| 1; 2; 3 |]
      ~decisions:[| Some 1; None; Some 1 |] ~crashed:Procset.empty
      ~starved:(Procset.singleton 1) ()
  in
  Alcotest.(check bool) "starved excused" true (Checker.ok r);
  let r2 =
    Checker.check ~problem:(Problem.make ~t:1 ~k:2 ~n:3) ~inputs:[| 1; 2; 3 |]
      ~decisions:[| None; None; Some 1 |] ~crashed:Procset.empty
      ~starved:(Procset.of_list [ 0; 1 ]) ()
  in
  match r2.Checker.termination with
  | Checker.Vacuous 2 -> ()
  | _ -> Alcotest.fail "expected vacuous beyond budget"

(* ------------------------------------------------------------------ *)
(* Paxos *)

(* liveness: a single proposer running alone decides its own input *)
let test_paxos_solo_decides () =
  let store = Store.create () in
  let shared = Paxos.create_shared store ~n:3 ~name:"paxos" in
  let decided = ref None in
  let body p () =
    if p = 0 then begin
      let proposer = Paxos.make_proposer shared ~proc:0 ~input:77 in
      match Paxos.attempt proposer with
      | Paxos.Decided v -> decided := Some v
      | Paxos.Interfered -> Alcotest.fail "solo proposer interfered"
    end
    else while true do Shm.pause () done
  in
  let source ~live = Generators.round_robin ~live ~n:3 () in
  ignore (Executor.run ~n:3 ~source ~max_steps:100 body);
  Alcotest.(check (option int)) "decides own input" (Some 77) !decided;
  Alcotest.(check (option int)) "visible in shared state" (Some 77)
    (Paxos.peek_decision shared)

(* safety: under random schedules, several concurrent proposers
   retrying forever never decide two different values *)
let test_paxos_safety_random () =
  for seed = 1 to 30 do
    let n = 3 + (seed mod 3) in
    let store = Store.create () in
    let shared = Paxos.create_shared store ~n ~name:"paxos" in
    let decisions = Array.make n None in
    let body p () =
      let proposer = Paxos.make_proposer shared ~proc:p ~input:(100 + p) in
      let rec go attempts =
        if attempts > 0 && decisions.(p) = None then begin
          (match Paxos.attempt proposer with
          | Paxos.Decided v -> decisions.(p) <- Some v
          | Paxos.Interfered -> ());
          go (attempts - 1)
        end
      in
      go 50
    in
    let rng = Rng.create ~seed in
    let source ~live = Generators.random_fair ~live ~n ~rng () in
    ignore (Executor.run ~n ~source ~max_steps:100_000 body);
    let values =
      Array.to_list decisions |> List.filter_map Fun.id |> List.sort_uniq Int.compare
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: at most one decided value" seed)
      true
      (List.length values <= 1);
    (* validity: the value is someone's input *)
    List.iter
      (fun v -> Alcotest.(check bool) "valid" true (v >= 100 && v < 100 + n))
      values
  done

(* safety under crashes at adversarial points *)
let test_paxos_safety_with_crashes () =
  for seed = 1 to 20 do
    let n = 4 in
    let store = Store.create () in
    let shared = Paxos.create_shared store ~n ~name:"paxos" in
    let decisions = Array.make n None in
    let body p () =
      let proposer = Paxos.make_proposer shared ~proc:p ~input:(200 + p) in
      let rec go attempts =
        if attempts > 0 && decisions.(p) = None then begin
          (match Paxos.attempt proposer with
          | Paxos.Decided v -> decisions.(p) <- Some v
          | Paxos.Interfered -> ());
          go (attempts - 1)
        end
      in
      go 50
    in
    let rng = Rng.create ~seed:(seed * 31) in
    let source ~live = Generators.random_fair ~live ~n ~rng () in
    (* crash two processes mid-protocol at varying points *)
    let fault = [ (0, 3 + seed); (1, 9 + (2 * seed)) ] in
    ignore (Executor.run ~n ~source ~max_steps:100_000 ~fault body);
    let values =
      Array.to_list decisions |> List.filter_map Fun.id |> List.sort_uniq Int.compare
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: agreement under crashes" seed)
      true
      (List.length values <= 1)
  done

(* ballots of distinct processes never collide *)
let test_paxos_ballot_classes () =
  let store = Store.create () in
  let shared = Paxos.create_shared store ~n:3 ~name:"paxos" in
  let a = Paxos.make_proposer shared ~proc:0 ~input:1 in
  let b = Paxos.make_proposer shared ~proc:1 ~input:2 in
  Alcotest.(check bool) "distinct initial ballots" true
    (Paxos.current_ballot a <> Paxos.current_ballot b);
  Alcotest.(check int) "p1 class" 1 (Paxos.current_ballot a mod 3);
  Alcotest.(check int) "p2 class" 2 (Paxos.current_ballot b mod 3)

(* ------------------------------------------------------------------ *)
(* Trivial algorithm (t < k) *)

let test_trivial_solves () =
  let problem = Problem.make ~t:1 ~k:2 ~n:4 in
  let inputs = [| 10; 20; 30; 40 |] in
  let source ~live = Generators.round_robin ~live ~n:4 () in
  let outcome = Ag_harness.solve ~problem ~inputs ~source ~max_steps:10_000 () in
  Alcotest.(check bool) "ok" true (Ag_harness.ok outcome);
  Alcotest.(check bool) "used trivial" true outcome.Ag_harness.used_trivial;
  (* only the first t+1 inputs can be decided *)
  Array.iter
    (function
      | Some v -> Alcotest.(check bool) "from first t+1" true (v = 10 || v = 20)
      | None -> Alcotest.fail "undecided")
    outcome.Ag_harness.decisions

let test_trivial_with_crash () =
  let problem = Problem.make ~t:1 ~k:3 ~n:4 in
  let inputs = [| 10; 20; 30; 40 |] in
  let source ~live = Generators.round_robin ~live ~n:4 () in
  (* crash one of the designated writers before it writes *)
  let outcome =
    Ag_harness.solve ~problem ~inputs ~source ~max_steps:10_000 ~fault:[ (0, 0) ] ()
  in
  Alcotest.(check bool) "ok despite writer crash" true (Ag_harness.ok outcome);
  Array.iteri
    (fun p d ->
      if p <> 0 then Alcotest.(check (option int)) "adopt survivor" (Some 20) d)
    outcome.Ag_harness.decisions

(* ------------------------------------------------------- consensus *)

(* The designated-proposer consensus wrapper: uncontended round-robin
   run decides the proposer's input everywhere; a crashed non-proposer
   does not block the rest; create validates its arguments. The same
   body drives the net backend (see test_net.ml's agreement-over-net
   suite), so this pins the shm half of that comparison. *)
let test_consensus_decides () =
  let problem = Problem.consensus ~t:1 ~n:4 in
  let inputs = Problem.distinct_inputs problem in
  let source ~live = Generators.round_robin ~live ~n:4 () in
  let outcome =
    Ag_harness.solve ~problem ~inputs ~source ~solver:`Paxos ~max_steps:100_000 ()
  in
  Alcotest.(check bool) "ok" true (Ag_harness.ok outcome);
  Array.iter
    (fun d ->
      Alcotest.(check (option int)) "everyone decides the proposer's input"
        (Some inputs.(0)) d)
    outcome.Ag_harness.decisions

let test_consensus_crash_nonproposer () =
  let problem = Problem.consensus ~t:1 ~n:4 in
  let inputs = Problem.distinct_inputs problem in
  let source ~live = Generators.round_robin ~live ~n:4 () in
  let outcome =
    Ag_harness.solve ~problem ~inputs ~source ~solver:`Paxos ~max_steps:100_000
      ~fault:[ (2, 3) ] ()
  in
  Alcotest.(check bool) "ok despite the crash" true (Ag_harness.ok outcome);
  Array.iteri
    (fun p d ->
      if p <> 2 then
        Alcotest.(check (option int)) "survivors decide the proposer's input"
          (Some inputs.(0)) d)
    outcome.Ag_harness.decisions

let test_consensus_create_validation () =
  let store = Store.create () in
  Alcotest.check_raises "inputs length"
    (Invalid_argument "Consensus.create: inputs must have length n") (fun () ->
      ignore (Setsync_agreement.Consensus.create store ~n:3 ~inputs:[| 1 |] ()));
  Alcotest.check_raises "proposer range"
    (Invalid_argument "Consensus.create: proposer out of range") (fun () ->
      ignore
        (Setsync_agreement.Consensus.create store ~n:3 ~inputs:[| 1; 2; 3 |] ~proposer:3 ()))

let test_trivial_create_validation () =
  let store = Store.create () in
  Alcotest.check_raises "t >= k" (Invalid_argument "Trivial.create: requires t < k") (fun () ->
      ignore
        (Trivial.create store ~problem:(Problem.make ~t:2 ~k:2 ~n:3) ~inputs:[| 1; 2; 3 |]))

(* ------------------------------------------------------------------ *)
(* K-set solver (Theorem 24) *)

let solve_kset ~t ~k ~n ~seed ~fault ~p ~q ~bound =
  let problem = Problem.make ~t ~k ~n in
  let inputs = Problem.distinct_inputs problem in
  let rng = Rng.create ~seed in
  let contract = { Generators.p = Procset.of_list p; q = Procset.of_list q; bound } in
  let source ~live = Generators.timely ~live ~n ~contract ~rng () in
  Ag_harness.solve ~problem ~inputs ~source ~max_steps:5_000_000 ~fault ()

(* Theorem 24 across a grid, with crashes, in S^k_{t+1,n} *)
let test_theorem24_grid () =
  let cases =
    [
      (1, 1, 3, [ 0 ], [ 1; 2 ], [ (1, 300) ]);
      (2, 1, 3, [ 2 ], [ 0; 1; 2 ], [ (0, 150); (1, 400) ]);
      (2, 2, 4, [ 2; 3 ], [ 0; 1; 2 ], []);
      (2, 2, 4, [ 2; 3 ], [ 0; 1; 2 ], [ (0, 30); (1, 30) ]);
      (3, 2, 5, [ 2; 3 ], [ 0; 1; 4; 3 ], [ (0, 300); (1, 900); (4, 2000) ]);
      (3, 3, 5, [ 1; 2; 4 ], [ 0; 1; 2; 3 ], [ (0, 500) ]);
      (4, 2, 6, [ 4; 5 ], [ 0; 1; 2; 3; 4 ], [ (0, 100); (1, 200); (2, 400); (3, 800) ]);
    ]
  in
  List.iteri
    (fun idx (t, k, n, p, q, fault) ->
      let outcome = solve_kset ~t ~k ~n ~seed:(2000 + idx) ~fault ~p ~q ~bound:3 in
      if not (Ag_harness.ok outcome) then
        Alcotest.failf "case %d (t=%d k=%d n=%d): %a" idx t k n Ag_harness.pp outcome;
      Alcotest.(check bool) "within k values" true
        (outcome.Ag_harness.report.Checker.distinct_values <= k))
    cases

(* leaders of the initial canonical winnerset crash: the solver must
   re-elect and still decide *)
let test_kset_leader_crash_reelection () =
  let outcome =
    solve_kset ~t:2 ~k:2 ~n:4 ~seed:77 ~fault:[ (0, 5); (1, 60) ] ~p:[ 2; 3 ]
      ~q:[ 0; 1; 2 ] ~bound:2
  in
  Alcotest.(check bool) "solved after re-election" true (Ag_harness.ok outcome);
  (* survivors decided a survivor's value *)
  Array.iteri
    (fun proc d ->
      if proc >= 2 then
        match d with
        | Some v -> Alcotest.(check bool) "survivor value" true (v = 102 || v = 103)
        | None -> Alcotest.fail "survivor undecided")
    outcome.Ag_harness.decisions

let test_kset_create_validation () =
  let store = Store.create () in
  Alcotest.check_raises "t < k rejected"
    (Invalid_argument "Kset_solver.create: requires k <= t (use Trivial when t < k)")
    (fun () ->
      ignore
        (Kset_solver.create store ~problem:(Problem.make ~t:1 ~k:2 ~n:3)
           ~inputs:[| 1; 2; 3 |] ()))

(* consensus via the solver: k = 1 always yields a single value *)
let test_kset_consensus () =
  let outcome =
    solve_kset ~t:1 ~k:1 ~n:3 ~seed:78 ~fault:[ (0, 40) ] ~p:[ 1 ] ~q:[ 0; 2 ] ~bound:4
  in
  Alcotest.(check bool) "ok" true (Ag_harness.ok outcome);
  Alcotest.(check int) "single value" 1 outcome.Ag_harness.report.Checker.distinct_values

(* decide steps are recorded and bounded by the run length *)
let test_decide_steps_recorded () =
  let outcome = solve_kset ~t:2 ~k:2 ~n:4 ~seed:79 ~fault:[] ~p:[ 0; 1 ] ~q:[ 2; 3 ] ~bound:3 in
  let total = Run.total_steps outcome.Ag_harness.run in
  (match Ag_harness.last_decide_step outcome with
  | Some s -> Alcotest.(check bool) "within run" true (s < total)
  | None -> Alcotest.fail "no decisions recorded");
  Array.iteri
    (fun p d ->
      match (d, outcome.Ag_harness.decisions.(p)) with
      | Some _, Some _ | None, None -> ()
      | _ -> Alcotest.fail "decide step iff decision")
    outcome.Ag_harness.decide_steps

(* ------------------------------------------------------------------ *)
(* Adaptive adversary: the agreement-level Theorem 27 boundary *)

let adaptive_cell ~i ~j ~seed =
  let spec =
    {
      Setsync.Scenario.t = 2;
      k = 2;
      n = 5;
      i;
      j;
      bound = 3;
      seed;
      crashes = 0;
      adversary = Setsync.Scenario.Adaptive;
      max_steps = 400_000;
    }
  in
  let r = Setsync.Scenario.run_agreement spec in
  ( r.Setsync.Scenario.predicted,
    r.Setsync.Scenario.solved,
    r.Setsync.Scenario.outcome.Ag_harness.report.Checker.decided_count )

let test_adaptive_boundary () =
  List.iter
    (fun (i, j, seed) ->
      let predicted, solved, decided = adaptive_cell ~i ~j ~seed in
      Alcotest.(check bool) (Printf.sprintf "S^%d_%d matches prediction" i j) predicted solved;
      (* On solvable cells with i = k the adversary cannot afford its
         endgame and real decisions are forced; with i < k it may spend
         its whole fault budget stalling the run into vacuity (which is
         not a termination violation — the promise binds only runs with
         at most t faults; see EXPERIMENTS.md). Unsolvable cells must
         show no decisions at all. *)
      if predicted then begin
        if i = 2 (* = k *) then
          Alcotest.(check bool) (Printf.sprintf "S^%d_%d decided > 0" i j) true (decided > 0)
      end
      else Alcotest.(check int) (Printf.sprintf "S^%d_%d no decisions" i j) 0 decided)
    [ (1, 1, 101); (1, 2, 102); (2, 2, 103); (2, 3, 104); (3, 4, 105); (2, 4, 106) ]

(* Golden pin for the adversary's deterministic step stream (empty
   view, so no solver feedback): recorded against the List.nth pool
   scans, proving the array-backed pools preserve the emitted
   schedule exactly. *)
let test_adaptive_golden () =
  let contract =
    { Generators.p = Procset.of_list [ 0; 1 ]; q = Procset.of_list [ 2; 3 ]; bound = 3 }
  in
  let view = Kset_solver.empty_adversary_view ~n:5 in
  let src =
    Adaptive.source ~phase0:8 ~growth:4 ~n:5 ~contract ~fault_budget:2 ~defeat:2 ~view ()
  in
  Alcotest.(check (list int)) "deterministic prefix"
    [ 2; 3; 0; 4; 2; 3; 0; 4; 0; 1; 2; 3; 1; 4; 0; 1; 2; 3; 1; 4; 0; 1; 2; 3; 1;
      4; 0; 1; 2; 3; 1; 4; 2; 3; 1; 4; 2; 3; 1; 4; 0; 1; 2; 3; 0; 4; 0; 1; 2; 3;
      0; 4; 0; 1; 2; 3; 0; 4; 0; 1; 2; 3; 0; 4; 2; 3; 0; 4; 2; 3; 0; 4; 2; 3; 0;
      4; 0; 1; 2; 3; ]
    (Schedule.to_list (Source.take src 80))

(* safety is never lost, even on unsolvable cells under the adversary *)
let test_adaptive_safety_everywhere () =
  List.iter
    (fun (i, j, seed) ->
      let spec =
        {
          Setsync.Scenario.t = 2;
          k = 2;
          n = 5;
          i;
          j;
          bound = 3;
          seed;
          crashes = 1;
          adversary = Setsync.Scenario.Adaptive;
          max_steps = 200_000;
        }
      in
      let r = Setsync.Scenario.run_agreement spec in
      Alcotest.(check bool)
        (Printf.sprintf "S^%d_%d safe" i j)
        true
        (Checker.safe r.Setsync.Scenario.outcome.Ag_harness.report))
    [ (1, 1, 201); (2, 2, 202); (2, 3, 203); (3, 3, 204) ]

let () =
  Alcotest.run "setsync_agreement"
    [
      ( "problem",
        [
          Alcotest.test_case "make/pp" `Quick test_problem_make;
          Alcotest.test_case "strengthen" `Quick test_problem_strengthen;
          Alcotest.test_case "inputs" `Quick test_problem_inputs;
        ] );
      ( "checker",
        [
          Alcotest.test_case "all good" `Quick test_checker_all_good;
          Alcotest.test_case "validity violation" `Quick test_checker_validity_violation;
          Alcotest.test_case "agreement violation" `Quick test_checker_agreement_violation;
          Alcotest.test_case "uniformity" `Quick test_checker_uniformity;
          Alcotest.test_case "termination" `Quick test_checker_termination;
          Alcotest.test_case "starvation-aware" `Quick test_checker_starvation;
        ] );
      ( "paxos",
        [
          Alcotest.test_case "solo decides" `Quick test_paxos_solo_decides;
          Alcotest.test_case "safety random schedules" `Quick test_paxos_safety_random;
          Alcotest.test_case "safety with crashes" `Quick test_paxos_safety_with_crashes;
          Alcotest.test_case "ballot classes" `Quick test_paxos_ballot_classes;
        ] );
      ( "trivial",
        [
          Alcotest.test_case "solves t<k" `Quick test_trivial_solves;
          Alcotest.test_case "writer crash" `Quick test_trivial_with_crash;
          Alcotest.test_case "validation" `Quick test_trivial_create_validation;
        ] );
      ( "consensus",
        [
          Alcotest.test_case "round robin decides proposer input" `Quick
            test_consensus_decides;
          Alcotest.test_case "non-proposer crash tolerated" `Quick
            test_consensus_crash_nonproposer;
          Alcotest.test_case "validation" `Quick test_consensus_create_validation;
        ] );
      ( "kset_solver",
        [
          Alcotest.test_case "Theorem 24 grid" `Slow test_theorem24_grid;
          Alcotest.test_case "leader crash re-election" `Quick test_kset_leader_crash_reelection;
          Alcotest.test_case "validation" `Quick test_kset_create_validation;
          Alcotest.test_case "consensus (k=1)" `Quick test_kset_consensus;
          Alcotest.test_case "decide steps" `Quick test_decide_steps_recorded;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "Theorem 27 boundary" `Slow test_adaptive_boundary;
          Alcotest.test_case "empty-view stream golden" `Quick test_adaptive_golden;
          Alcotest.test_case "safety everywhere" `Slow test_adaptive_safety_everywhere;
        ] );
    ]
