(* Tests for the execution engine: fibers, step discipline, executor,
   crash injection, run records. *)

open Setsync_schedule
module Fiber = Setsync_runtime.Fiber
module Shm = Setsync_runtime.Shm
module Fault = Setsync_runtime.Fault
module Run = Setsync_runtime.Run
module Executor = Setsync_runtime.Executor
module Register = Setsync_memory.Register
module Store = Setsync_memory.Store

let schedule = Alcotest.testable Schedule.pp Schedule.equal

(* ------------------------------------------------------------------ *)
(* Fiber *)

let test_fiber_one_action_per_step () =
  let log = ref [] in
  let fiber =
    Fiber.spawn (fun () ->
        for i = 1 to 3 do
          Fiber.atomic (fun () -> log := i :: !log)
        done)
  in
  Alcotest.(check bool) "not done" false (Fiber.is_done fiber);
  Alcotest.(check bool) "step 1" true (Fiber.step fiber = Fiber.Performed);
  Alcotest.(check (list int)) "one action" [ 1 ] !log;
  Alcotest.(check bool) "step 2" true (Fiber.step fiber = Fiber.Performed);
  Alcotest.(check (list int)) "two actions" [ 2; 1 ] !log;
  ignore (Fiber.step fiber);
  Alcotest.(check bool) "final step finishes" true (Fiber.step fiber = Fiber.Finished);
  Alcotest.(check bool) "done" true (Fiber.is_done fiber);
  Alcotest.(check bool) "already done" true (Fiber.step fiber = Fiber.Already_done);
  Alcotest.(check (list int)) "no extra actions" [ 3; 2; 1 ] !log

let test_fiber_result_delivery () =
  let seen = ref 0 in
  let fiber =
    Fiber.spawn (fun () ->
        let x = Fiber.atomic (fun () -> 21) in
        let y = Fiber.atomic (fun () -> x * 2) in
        seen := y)
  in
  ignore (Fiber.step fiber);
  ignore (Fiber.step fiber);
  ignore (Fiber.step fiber);
  Alcotest.(check int) "results flow through" 42 !seen

let test_fiber_empty_body () =
  let fiber = Fiber.spawn (fun () -> ()) in
  Alcotest.(check bool) "finishes immediately" true (Fiber.step fiber = Fiber.Finished)

let test_fiber_exception_propagates () =
  let fiber = Fiber.spawn (fun () -> failwith "boom") in
  Alcotest.check_raises "propagates" (Failure "boom") (fun () -> ignore (Fiber.step fiber))

let test_atomic_outside_fiber () =
  Alcotest.check_raises "outside"
    (Failure "Fiber.atomic: called outside a fiber (no executor is granting steps)")
    (fun () -> ignore (Fiber.atomic (fun () -> 1)))

(* ------------------------------------------------------------------ *)
(* Fault *)

let test_fault_budgets () =
  let state = Fault.start ~n:3 [ (1, 2); (2, 0) ] in
  Alcotest.(check bool) "p3 dead at start" false (Fault.live state 2);
  Alcotest.(check bool) "p2 alive" true (Fault.live state 1);
  Alcotest.(check bool) "first step survives" false (Fault.note_step state 1);
  Alcotest.(check bool) "second step kills" true (Fault.note_step state 1);
  Alcotest.(check bool) "now dead" false (Fault.live state 1);
  Alcotest.(check int) "steps recorded" 2 (Fault.steps_taken state 1);
  Alcotest.(check bool) "unplanned never dies" false (Fault.note_step state 0);
  Alcotest.(check int) "crashed set" 2 (Procset.cardinal (Fault.crashed state))

let test_fault_validate () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Fault.validate: duplicate process in plan")
    (fun () -> Fault.validate ~n:3 [ (0, 1); (0, 2) ]);
  Alcotest.check_raises "negative" (Invalid_argument "Fault.validate: negative step budget")
    (fun () -> Fault.validate ~n:3 [ (0, -1) ])

(* ------------------------------------------------------------------ *)
(* Executor *)

let test_executor_replay_interleaving () =
  (* the classic lost-update interleaving: under strict alternation,
     each read-read-write-write round nets only the second writer's
     increment *)
  let store = Store.create () in
  let counter = Store.register store ~name:"counter" 0 in
  let body p () =
    for _ = 1 to 5 do
      let v = Shm.read counter in
      Shm.write counter (v + p + 1)
    done
  in
  let sched =
    Schedule.repeat (Schedule.of_list ~n:2 [ 0; 1 ]) 11 (* 20 ops + 2 final halts *)
  in
  let run = Executor.replay ~n:2 ~schedule:sched body in
  Alcotest.(check int) "lost updates" 10 (Register.peek counter);
  Alcotest.(check bool) "all halted" true (run.Run.reason = Run.All_halted)

let test_executor_sequential_no_race () =
  let store = Store.create () in
  let counter = Store.register store ~name:"counter" 0 in
  let body p () =
    for _ = 1 to 5 do
      let v = Shm.read counter in
      Shm.write counter (v + p + 1)
    done
  in
  (* p1 runs fully, then p2: no lost updates *)
  let sched =
    Schedule.append (Schedule.repeat (Schedule.of_list ~n:2 [ 0 ]) 11)
      (Schedule.repeat (Schedule.of_list ~n:2 [ 1 ]) 11)
  in
  ignore (Executor.replay ~n:2 ~schedule:sched body);
  Alcotest.(check int) "sequential sum" 15 (Register.peek counter)

let test_executor_records_taken_schedule () =
  let body _ () = while true do Shm.pause () done in
  let source ~live = Generators.round_robin ~live ~n:3 () in
  let run = Executor.run ~n:3 ~source ~max_steps:9 body in
  Alcotest.check schedule "taken" (Schedule.repeat (Schedule.of_list ~n:3 [ 0; 1; 2 ]) 3)
    run.Run.taken;
  Alcotest.(check bool) "budget" true (run.Run.reason = Run.Step_budget);
  Alcotest.(check (list int)) "steps per proc" [ 3; 3; 3 ] (Array.to_list run.Run.steps_of)

let test_executor_crash_injection () =
  let store = Store.create () in
  let flag = Store.register store ~name:"flag" false in
  let body p () =
    if p = 0 then begin
      Shm.write flag true;
      while true do
        Shm.pause ()
      done
    end
    else while not (Shm.read flag) do () done
  in
  let source ~live = Generators.round_robin ~live ~n:2 () in
  let run = Executor.run ~n:2 ~source ~max_steps:100 ~fault:[ (0, 3) ] body in
  Alcotest.(check bool) "p1 crashed" true (Procset.mem 0 (Run.crashed run));
  Alcotest.(check int) "p1 took exactly its budget" 3 run.Run.steps_of.(0);
  Alcotest.(check bool) "p2 correct" true (Procset.mem 1 (Run.correct run));
  Alcotest.(check bool) "p2 halted after seeing flag" true (Procset.mem 1 run.Run.halted);
  (* crash position recorded *)
  match run.Run.crashes with
  | [ (0, global) ] -> Alcotest.(check bool) "crash step sane" true (global < 10)
  | _ -> Alcotest.fail "expected exactly one crash"

let test_executor_crash_at_zero () =
  let body _ () = while true do Shm.pause () done in
  let source ~live = Generators.round_robin ~live ~n:2 () in
  let run = Executor.run ~n:2 ~source ~max_steps:10 ~fault:[ (1, 0) ] body in
  Alcotest.(check int) "never scheduled" 0 run.Run.steps_of.(1);
  Alcotest.(check int) "other got all" 10 run.Run.steps_of.(0)

let test_executor_all_crash () =
  let body _ () = while true do Shm.pause () done in
  let source ~live = Generators.round_robin ~live ~n:2 () in
  let run = Executor.run ~n:2 ~source ~max_steps:1000 ~fault:[ (0, 2); (1, 2) ] body in
  Alcotest.(check bool) "all halted reason" true (run.Run.reason = Run.All_halted);
  Alcotest.(check int) "total steps" 4 (Run.total_steps run)

let test_executor_stop_predicate () =
  let count = ref 0 in
  let body _ () =
    while true do
      Shm.pause ();
      incr count
    done
  in
  let source ~live = Generators.round_robin ~live ~n:2 () in
  let run =
    Executor.run ~n:2 ~source ~max_steps:1000 ~stop:(fun () -> !count >= 7) body
  in
  Alcotest.(check bool) "stopped early" true (run.Run.reason = Run.Stopped_early);
  (* local code after a pause runs on the process's next grant, so the
     counter lags the step count by up to one step per process *)
  Alcotest.(check int) "count at stop" 7 !count;
  Alcotest.(check bool) "within the lag window" true
    (let s = Run.total_steps run in
     s >= 7 && s <= 9)

let test_executor_on_step_observer () =
  let seen = ref [] in
  let body _ () = while true do Shm.pause () done in
  let source ~live = Generators.round_robin ~live ~n:2 () in
  let on_step ~global ~proc = seen := (global, proc) :: !seen in
  ignore (Executor.run ~n:2 ~source ~max_steps:4 ~on_step body);
  Alcotest.(check (list (pair int int))) "observed in order"
    [ (0, 0); (1, 1); (2, 0); (3, 1) ]
    (List.rev !seen)

let test_executor_source_exhaustion () =
  let body _ () = while true do Shm.pause () done in
  let source ~live:_ = Source.of_schedule (Schedule.of_list ~n:2 [ 0; 1; 0 ]) in
  let run = Executor.run ~n:2 ~source ~max_steps:100 body in
  Alcotest.(check bool) "exhausted" true (run.Run.reason = Run.Source_exhausted);
  Alcotest.(check int) "three steps" 3 (Run.total_steps run)

let test_executor_skips_dead_in_replay () =
  (* a fixed schedule naming a crashed process: steps are skipped, not
     executed *)
  let store = Store.create () in
  let counter = Store.register store ~name:"c" 0 in
  let body _ () =
    while true do
      let v = Shm.read counter in
      Shm.write counter (v + 1)
    done
  in
  let sched = Schedule.of_list ~n:2 [ 0; 0; 0; 0; 1; 0; 1; 0 ] in
  let run = Executor.replay ~n:2 ~schedule:sched ~fault:[ (0, 2) ] body in
  Alcotest.(check int) "p1 stopped at 2" 2 run.Run.steps_of.(0);
  Alcotest.(check int) "p2 took its steps" 2 run.Run.steps_of.(1);
  (* taken schedule contains only executed steps *)
  Alcotest.check schedule "taken" (Schedule.of_list ~n:2 [ 0; 0; 1; 1 ]) run.Run.taken

let test_executor_stall_detection () =
  (* a source that forever names a crashed process stalls the run *)
  let body _ () = while true do Shm.pause () done in
  let source ~live:_ = Source.cycle (Schedule.of_list ~n:2 [ 1 ]) in
  let run = Executor.run ~n:2 ~source ~max_steps:10_000 ~fault:[ (1, 0) ] body in
  Alcotest.(check bool) "stalled" true (run.Run.reason = Run.Stalled);
  Alcotest.(check int) "nothing executed" 0 (Run.total_steps run)

let test_run_correct_and_pp () =
  let body _ () = while true do Shm.pause () done in
  let source ~live = Generators.round_robin ~live ~n:3 () in
  let run = Executor.run ~n:3 ~source ~max_steps:50 ~fault:[ (2, 5) ] body in
  Alcotest.(check int) "correct count" 2 (Procset.cardinal (Run.correct run));
  Alcotest.(check bool) "pp smoke" true (String.length (Fmt.str "%a" Run.pp run) > 0)

(* pause steps consume schedule budget without touching any register *)
let test_pause_step_accounting () =
  let store = Store.create () in
  let r = Store.register store ~name:"r" 0 in
  let body p () =
    if p = 0 then
      while true do
        Shm.pause ()
      done
    else
      while true do
        Shm.write r (Shm.read r + 1)
      done
  in
  let source ~live = Generators.round_robin ~live ~n:2 () in
  let run = Executor.run ~n:2 ~source ~max_steps:10 body in
  Alcotest.(check int) "pauses counted as steps" 5 run.Run.steps_of.(0);
  Alcotest.(check int) "worker stepped as often" 5 run.Run.steps_of.(1);
  Alcotest.(check int) "pauses left no footprint" 5
    (Register.reads r + Register.writes r)

(* a fault whose budget runs out on a pause step: the pause executes,
   the process is dead from then on, and the local code after the pause
   (which would run on the next grant) is never reached *)
let test_crash_on_pause_step () =
  let after_pause = ref 0 in
  let body p () =
    if p = 0 then
      while true do
        Shm.pause ();
        incr after_pause
      done
    else
      while true do
        Shm.pause ()
      done
  in
  let sched = Schedule.of_list ~n:2 [ 0; 0; 0; 1; 0; 0; 1 ] in
  let run = Executor.replay ~n:2 ~schedule:sched ~fault:[ (0, 3) ] body in
  Alcotest.(check int) "exactly the budget" 3 run.Run.steps_of.(0);
  Alcotest.(check bool) "crashed" true (Procset.mem 0 (Run.crashed run));
  (* the grant resuming after pause k is step k+1; with the crash on
     step 3 only the code after pauses 1 and 2 ever ran *)
  Alcotest.(check int) "post-pause code stops with the crash" 2 !after_pause;
  (* schedule entries naming the dead process are skipped, not executed *)
  Alcotest.check schedule "taken" (Schedule.of_list ~n:2 [ 0; 0; 0; 1; 1 ]) run.Run.taken;
  match run.Run.crashes with
  | [ (0, 2) ] -> ()
  | _ -> Alcotest.fail "expected p0's crash recorded at global step 2"

(* step accounting: one shared op per scheduled step *)
let test_step_accounting () =
  let store = Store.create () in
  let r = Store.register store ~name:"r" 0 in
  let body _ () =
    for _ = 1 to 10 do
      ignore (Shm.read r)
    done
  in
  let source ~live = Generators.round_robin ~live ~n:1 () in
  let run = Executor.run ~n:1 ~source ~max_steps:100 body in
  (* 10 reads + 1 finishing step *)
  Alcotest.(check int) "reads counted" 10 (Register.reads r);
  Alcotest.(check int) "steps = ops + final halt" 11 (Run.total_steps run)

let () =
  Alcotest.run "setsync_runtime"
    [
      ( "fiber",
        [
          Alcotest.test_case "one action per step" `Quick test_fiber_one_action_per_step;
          Alcotest.test_case "result delivery" `Quick test_fiber_result_delivery;
          Alcotest.test_case "empty body" `Quick test_fiber_empty_body;
          Alcotest.test_case "exception propagates" `Quick test_fiber_exception_propagates;
          Alcotest.test_case "atomic outside fiber" `Quick test_atomic_outside_fiber;
        ] );
      ( "fault",
        [
          Alcotest.test_case "budgets" `Quick test_fault_budgets;
          Alcotest.test_case "validation" `Quick test_fault_validate;
        ] );
      ( "executor",
        [
          Alcotest.test_case "race interleaving" `Quick test_executor_replay_interleaving;
          Alcotest.test_case "sequential execution" `Quick test_executor_sequential_no_race;
          Alcotest.test_case "records taken schedule" `Quick test_executor_records_taken_schedule;
          Alcotest.test_case "crash injection" `Quick test_executor_crash_injection;
          Alcotest.test_case "crash at zero" `Quick test_executor_crash_at_zero;
          Alcotest.test_case "all crash" `Quick test_executor_all_crash;
          Alcotest.test_case "stop predicate" `Quick test_executor_stop_predicate;
          Alcotest.test_case "on_step observer" `Quick test_executor_on_step_observer;
          Alcotest.test_case "source exhaustion" `Quick test_executor_source_exhaustion;
          Alcotest.test_case "replay skips dead" `Quick test_executor_skips_dead_in_replay;
          Alcotest.test_case "stall detection" `Quick test_executor_stall_detection;
          Alcotest.test_case "run record" `Quick test_run_correct_and_pp;
          Alcotest.test_case "pause step accounting" `Quick test_pause_step_accounting;
          Alcotest.test_case "crash on a pause step" `Quick test_crash_on_pause_step;
          Alcotest.test_case "step accounting" `Quick test_step_accounting;
        ] );
    ]
