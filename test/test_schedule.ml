(* Tests for the schedule substrate: process sets, schedules, set
   timeliness (Definition 1), systems S^i_{j,n} (Observations 2-5) and
   the generator contracts. *)

open Setsync_schedule

let procset = Alcotest.testable Procset.pp Procset.equal

let schedule = Alcotest.testable Schedule.pp Schedule.equal

(* ------------------------------------------------------------------ *)
(* Procset *)

let test_procset_basics () =
  let s = Procset.of_list [ 0; 2; 4 ] in
  Alcotest.(check int) "cardinal" 3 (Procset.cardinal s);
  Alcotest.(check bool) "mem 0" true (Procset.mem 0 s);
  Alcotest.(check bool) "mem 1" false (Procset.mem 1 s);
  Alcotest.(check int) "min_elt" 0 (Procset.min_elt s);
  Alcotest.(check (list int)) "elements" [ 0; 2; 4 ] (Procset.elements s);
  Alcotest.(check int) "nth 1" 2 (Procset.nth s 1);
  Alcotest.(check int) "nth 2" 4 (Procset.nth s 2)

let test_procset_algebra () =
  let a = Procset.of_list [ 0; 1 ] and b = Procset.of_list [ 1; 2 ] in
  Alcotest.check procset "union" (Procset.of_list [ 0; 1; 2 ]) (Procset.union a b);
  Alcotest.check procset "inter" (Procset.singleton 1) (Procset.inter a b);
  Alcotest.check procset "diff" (Procset.singleton 0) (Procset.diff a b);
  Alcotest.(check bool) "subset yes" true (Procset.subset a (Procset.of_list [ 0; 1; 2 ]));
  Alcotest.(check bool) "subset no" false (Procset.subset a b);
  Alcotest.(check bool) "disjoint no" false (Procset.disjoint a b);
  Alcotest.(check bool)
    "disjoint yes" true
    (Procset.disjoint a (Procset.of_list [ 2; 3 ]));
  Alcotest.check procset "empty diff" Procset.empty (Procset.diff a a)

let test_procset_full_remove () =
  let full = Procset.full ~n:5 in
  Alcotest.(check int) "full cardinal" 5 (Procset.cardinal full);
  let without = Procset.remove 2 full in
  Alcotest.(check int) "remove cardinal" 4 (Procset.cardinal without);
  Alcotest.(check bool) "removed" false (Procset.mem 2 without);
  Alcotest.check procset "add back" full (Procset.add 2 without)

let test_subsets_of_size () =
  let subsets = Procset.subsets_of_size ~n:4 2 in
  Alcotest.(check int) "C(4,2)" 6 (List.length subsets);
  Alcotest.(check int) "count matches" (Procset.count_subsets ~n:4 2) (List.length subsets);
  List.iter
    (fun s -> Alcotest.(check int) "each size 2" 2 (Procset.cardinal s))
    subsets;
  (* canonical order is strictly increasing *)
  let rec ascending = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "ascending" true (Procset.compare a b < 0);
        ascending rest
    | [ _ ] | [] -> ()
  in
  ascending subsets;
  (* all distinct *)
  Alcotest.(check int) "distinct" 6
    (List.length (List.sort_uniq Procset.compare subsets))

let test_subsets_edge_sizes () =
  Alcotest.(check int) "k=0" 1 (List.length (Procset.subsets_of_size ~n:4 0));
  Alcotest.(check int) "k=n" 1 (List.length (Procset.subsets_of_size ~n:4 4));
  Alcotest.check procset "k=n is full" (Procset.full ~n:4)
    (List.hd (Procset.subsets_of_size ~n:4 4));
  Alcotest.(check int) "C(6,3)" 20 (List.length (Procset.subsets_of_size ~n:6 3));
  Alcotest.(check int) "C(10,5)" 252 (Procset.count_subsets ~n:10 5)

let test_procset_invalid () =
  Alcotest.check_raises "negative proc" (Invalid_argument "Procset: process -1 out of range")
    (fun () -> ignore (Procset.singleton (-1)));
  Alcotest.check_raises "nth out of range"
    (Invalid_argument "Procset.nth: rank 1 out of range") (fun () ->
      ignore (Procset.nth (Procset.singleton 0) 1))

(* ------------------------------------------------------------------ *)
(* Schedule *)

let test_schedule_basics () =
  let s = Schedule.of_list ~n:3 [ 0; 1; 2; 1; 0 ] in
  Alcotest.(check int) "length" 5 (Schedule.length s);
  Alcotest.(check int) "get 0" 0 (Schedule.get s 0);
  Alcotest.(check int) "get 3" 1 (Schedule.get s 3);
  Alcotest.(check int) "occurrences p1" 2 (Schedule.occurrences s 0);
  Alcotest.(check int) "occurrences p2" 2 (Schedule.occurrences s 1);
  Alcotest.(check int) "occurrences p3" 1 (Schedule.occurrences s 2);
  Alcotest.check procset "support" (Procset.full ~n:3) (Schedule.support s);
  Alcotest.(check (option int)) "last p1" (Some 4) (Schedule.last_occurrence s 0);
  Alcotest.(check (option int)) "last p3" (Some 2) (Schedule.last_occurrence s 2)

let test_schedule_concat_repeat () =
  let a = Schedule.of_list ~n:2 [ 0; 1 ] in
  let twice = Schedule.repeat a 2 in
  Alcotest.check schedule "repeat" (Schedule.of_list ~n:2 [ 0; 1; 0; 1 ]) twice;
  Alcotest.check schedule "append" twice (Schedule.append a a);
  Alcotest.check schedule "concat" (Schedule.repeat a 3) (Schedule.concat ~n:2 [ a; a; a ]);
  Alcotest.check schedule "repeat 0" (Schedule.empty ~n:2) (Schedule.repeat a 0);
  Alcotest.check schedule "prefix" a (Schedule.prefix twice 2);
  Alcotest.check schedule "prefix beyond" twice (Schedule.prefix twice 99);
  Alcotest.check schedule "sub" (Schedule.of_list ~n:2 [ 1; 0 ]) (Schedule.sub twice ~pos:1 ~len:2)

let test_schedule_occurrences_in () =
  let s = Schedule.of_list ~n:4 [ 0; 1; 2; 3; 0; 1 ] in
  Alcotest.(check int) "in {0,1}" 4 (Schedule.occurrences_in s (Procset.of_list [ 0; 1 ]));
  Alcotest.(check int) "in empty" 0 (Schedule.occurrences_in s Procset.empty);
  Alcotest.(check int) "in full" 6 (Schedule.occurrences_in s (Procset.full ~n:4));
  Alcotest.(check (list int)) "steps per process" [ 2; 2; 1; 1 ]
    (Array.to_list (Schedule.steps_per_process s))

let test_schedule_universe_mismatch () =
  let a = Schedule.of_list ~n:2 [ 0 ] and b = Schedule.of_list ~n:3 [ 0 ] in
  Alcotest.check_raises "append mismatch"
    (Invalid_argument "Schedule.append: universe mismatch") (fun () ->
      ignore (Schedule.append a b))

(* ------------------------------------------------------------------ *)
(* Source *)

let test_source_of_schedule () =
  let s = Schedule.of_list ~n:2 [ 0; 1; 1 ] in
  let src = Source.of_schedule s in
  Alcotest.check schedule "take all" s (Source.take src 10);
  Alcotest.(check (option int)) "exhausted" None (Source.next src)

let test_source_cycle () =
  let s = Schedule.of_list ~n:2 [ 0; 1 ] in
  let src = Source.cycle s in
  Alcotest.check schedule "cycled" (Schedule.repeat s 3) (Source.take src 6)

let test_source_append_filtered () =
  let a = Source.of_schedule (Schedule.of_list ~n:3 [ 0; 0 ]) in
  let b = Source.of_schedule (Schedule.of_list ~n:3 [ 1; 2 ]) in
  let joined = Source.append a b in
  Alcotest.check schedule "append drains both" (Schedule.of_list ~n:3 [ 0; 0; 1; 2 ])
    (Source.take joined 10);
  let src = Source.of_schedule (Schedule.of_list ~n:3 [ 0; 1; 2; 1; 0 ]) in
  let filtered = Source.filtered src ~keep:(fun p -> p <> 1) ~max_skip:5 in
  Alcotest.check schedule "filtered" (Schedule.of_list ~n:3 [ 0; 2; 0 ])
    (Source.take filtered 10)

(* ------------------------------------------------------------------ *)
(* Timeliness: Definition 1 *)

let fig1_prefix len = Source.take (Generators.figure1 ()) len

let test_figure1_shape () =
  (* (p1 q) (p2 q) (p1 q)^2 (p2 q)^2 (p1 q)^3 ... *)
  let s = fig1_prefix 12 in
  Alcotest.check schedule "first blocks"
    (Schedule.of_list ~n:3 [ 0; 2; 1; 2; 0; 2; 0; 2; 1; 2; 1; 2 ])
    s

let test_figure1_timeliness () =
  (* the paper's Figure 1: neither {p1} nor {p2} is timely w.r.t. {q},
     but {p1, p2} is (with bound 2) *)
  let s = fig1_prefix 10_000 in
  let p1 = Procset.singleton 0 and p2 = Procset.singleton 1 and q = Procset.singleton 2 in
  let pair = Procset.union p1 p2 in
  Alcotest.(check int) "pair bound = 2" 2 (Timeliness.observed_bound ~p:pair ~q s);
  Alcotest.(check bool) "pair holds at 2" true (Timeliness.holds ~bound:2 ~p:pair ~q s);
  Alcotest.(check bool) "pair fails at 1" false (Timeliness.holds ~bound:1 ~p:pair ~q s);
  (* singleton bounds grow with the prefix *)
  let b1 = Timeliness.observed_bound ~p:p1 ~q s in
  let b2 = Timeliness.observed_bound ~p:p2 ~q s in
  Alcotest.(check bool) "p1 bound large" true (b1 > 20);
  Alcotest.(check bool) "p2 bound large" true (b2 > 20);
  let longer = fig1_prefix 40_000 in
  Alcotest.(check bool) "p1 bound grows" true
    (Timeliness.observed_bound ~p:p1 ~q longer > b1)

let test_timeliness_bound_exact () =
  (* q q p q q q p: max P-free gap has 3 q-steps -> bound 4 *)
  let s = Schedule.of_list ~n:2 [ 1; 1; 0; 1; 1; 1; 0 ] in
  let p = Procset.singleton 0 and q = Procset.singleton 1 in
  Alcotest.(check int) "bound" 4 (Timeliness.observed_bound ~p ~q s);
  Alcotest.(check bool) "holds at 4" true (Timeliness.holds ~bound:4 ~p ~q s);
  Alcotest.(check bool) "fails at 3" false (Timeliness.holds ~bound:3 ~p ~q s)

let test_timeliness_trailing_gap () =
  (* the gap after the last P step counts too *)
  let s = Schedule.of_list ~n:2 [ 0; 1; 1; 1; 1; 1 ] in
  let p = Procset.singleton 0 and q = Procset.singleton 1 in
  Alcotest.(check int) "trailing gap" 6 (Timeliness.observed_bound ~p ~q s)

let test_timeliness_vacuous () =
  (* q never steps: timely at bound 1 *)
  let s = Schedule.of_list ~n:3 [ 0; 1; 0; 1 ] in
  let p = Procset.singleton 0 and q = Procset.singleton 2 in
  Alcotest.(check int) "vacuous bound" 1 (Timeliness.observed_bound ~p ~q s);
  (* self-timeliness: P = Q *)
  Alcotest.(check int) "self" 1 (Timeliness.observed_bound ~p ~q:p s);
  Alcotest.(check int) "self bound constant" 1 (Timeliness.self_timely_bound ())

let test_timeliness_overlap () =
  (* steps of P ∩ Q reset the gap (they are P-steps) *)
  let p = Procset.of_list [ 0; 1 ] and q = Procset.of_list [ 1; 2 ] in
  let s = Schedule.of_list ~n:3 [ 2; 2; 1; 2; 2; 0 ] in
  Alcotest.(check int) "overlap" 3 (Timeliness.observed_bound ~p ~q s)

(* Edge cases of Definition 1: empty witness sets, full overlap, and
   the boundary agreement [holds ~bound <-> observed_bound <= bound]
   that every caller of the pair implicitly assumes. *)
let test_timeliness_edges () =
  let p = Procset.singleton 0 and q = Procset.singleton 1 in
  (* empty q: no window contains a Q-step, so timeliness is vacuous at
     the least possible bound, whatever p is *)
  let s = Schedule.of_list ~n:2 [ 0; 1; 1; 0 ] in
  Alcotest.(check int) "empty q is vacuous" 1
    (Timeliness.observed_bound ~p ~q:Procset.empty s);
  Alcotest.(check int) "empty q, empty p still vacuous" 1
    (Timeliness.observed_bound ~p:Procset.empty ~q:Procset.empty s);
  Alcotest.(check bool) "empty q holds at 1" true
    (Timeliness.holds ~bound:1 ~p ~q:Procset.empty s);
  (* empty p: the whole schedule is one P-free gap *)
  Alcotest.(check int) "empty p counts every q step" 3
    (Timeliness.observed_bound ~p:Procset.empty ~q s);
  (* empty schedule: no window at all *)
  let nil = Schedule.of_list ~n:2 [] in
  Alcotest.(check int) "empty schedule" 1 (Timeliness.observed_bound ~p ~q nil);
  (* q a subset of p: every Q-step is itself a P-step — P wins on
     every overlap, bound collapses to self-timeliness *)
  let big_p = Procset.of_list [ 0; 1 ] in
  let s = Schedule.of_list ~n:3 [ 1; 1; 2; 1; 2; 2; 1 ] in
  Alcotest.(check int) "q within p is self-timely" 1
    (Timeliness.observed_bound ~p:big_p ~q s);
  (* partial overlap: only the q-steps outside p accumulate (the
     longest p-free run of [s] has two 2-steps -> bound 3) *)
  let q2 = Procset.of_list [ 1; 2 ] in
  Alcotest.(check int) "only q-steps outside p count" 3
    (Timeliness.observed_bound ~p:big_p ~q:q2 s);
  (* boundary agreement, swept across the pivot on several shapes *)
  let shapes =
    [
      Schedule.of_list ~n:3 [ 1; 1; 0; 1; 1; 1; 0 ];
      Schedule.of_list ~n:3 [ 0; 1; 1; 1; 1; 1 ];
      Schedule.of_list ~n:3 [ 2; 2; 1; 2; 2; 0 ];
      nil;
    ]
  in
  List.iter
    (fun s ->
      let b = Timeliness.observed_bound ~p ~q:q2 s in
      for bound = 1 to b + 2 do
        Alcotest.(check bool)
          (Fmt.str "holds at %d agrees with observed %d" bound b)
          (bound >= b)
          (Timeliness.holds ~bound ~p ~q:q2 s)
      done)
    shapes;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Timeliness.holds: bound must be >= 1") (fun () ->
      ignore (Timeliness.holds ~bound:0 ~p ~q nil))

let test_process_timely () =
  let s = fig1_prefix 1000 in
  Alcotest.(check bool) "p1 not timely wrt q at 5" false
    (Timeliness.process_timely ~bound:5 ~p:0 ~q:2 s);
  Alcotest.(check bool) "q timely wrt p1 at 2" true
    (Timeliness.process_timely ~bound:2 ~p:2 ~q:0 s)

(* Observation 2, quantitatively *)
let test_union_bound () =
  Alcotest.(check int) "1+1" 1 (Timeliness.union_bound 1 1);
  Alcotest.(check int) "3+4" 6 (Timeliness.union_bound 3 4);
  Alcotest.check_raises "invalid" (Invalid_argument "Timeliness.union_bound") (fun () ->
      ignore (Timeliness.union_bound 0 1))

(* ------------------------------------------------------------------ *)
(* Property tests: Observations 2 and 3 on random schedules *)

let rng_state seed = Setsync_schedule.Rng.create ~seed

let random_schedule rng ~n ~len =
  Schedule.of_list ~n (List.init len (fun _ -> Rng.int rng n))

let random_set rng ~n =
  let size = 1 + Rng.int rng n in
  Procset.random_subset rng ~n ~size

let prop_observation2 =
  QCheck2.Test.make ~name:"Observation 2: union of timely pairs is timely (bound arithmetic)"
    ~count:300 QCheck2.Gen.(pair (int_bound 10_000) (int_range 4 8))
    (fun (seed, n) ->
      let rng = rng_state (seed + 1) in
      let s = random_schedule rng ~n ~len:400 in
      let p = random_set rng ~n and p' = random_set rng ~n in
      let q = random_set rng ~n and q' = random_set rng ~n in
      let b1 = Timeliness.observed_bound ~p ~q s in
      let b2 = Timeliness.observed_bound ~p:p' ~q:q' s in
      Timeliness.holds
        ~bound:(Timeliness.union_bound b1 b2)
        ~p:(Procset.union p p') ~q:(Procset.union q q') s)

let prop_observation3 =
  QCheck2.Test.make
    ~name:"Observation 3: superset of P / subset of Q preserves timeliness" ~count:300
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 4 8))
    (fun (seed, n) ->
      let rng = rng_state (seed + 2) in
      let s = random_schedule rng ~n ~len:400 in
      let p = random_set rng ~n and q = random_set rng ~n in
      let p' = Procset.union p (random_set rng ~n) in
      let q' = Procset.inter q (random_set rng ~n) in
      Timeliness.monotone ~p ~p' ~q ~q'
      &&
      let b = Timeliness.observed_bound ~p ~q s in
      Timeliness.holds ~bound:b ~p:p' ~q:q' s)

let prop_observed_bound_least =
  QCheck2.Test.make ~name:"observed_bound is the least valid bound" ~count:300
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 3 6))
    (fun (seed, n) ->
      let rng = rng_state (seed + 3) in
      let s = random_schedule rng ~n ~len:200 in
      let p = random_set rng ~n and q = random_set rng ~n in
      let b = Timeliness.observed_bound ~p ~q s in
      Timeliness.holds ~bound:b ~p ~q s
      && (b = 1 || not (Timeliness.holds ~bound:(b - 1) ~p ~q s)))

let prop_prefix_monotone =
  QCheck2.Test.make ~name:"observed_bound is monotone in the prefix" ~count:200
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 3 6))
    (fun (seed, n) ->
      let rng = rng_state (seed + 4) in
      let s = random_schedule rng ~n ~len:300 in
      let p = random_set rng ~n and q = random_set rng ~n in
      let b_half = Timeliness.observed_bound ~p ~q (Schedule.prefix s 150) in
      let b_full = Timeliness.observed_bound ~p ~q s in
      b_half <= b_full)

(* ------------------------------------------------------------------ *)
(* System S^i_{j,n} *)

let test_system_make () =
  let d = System.make ~i:2 ~j:3 ~n:5 in
  Alcotest.(check string) "pp" "S^2_{3,5}" (System.to_string d);
  Alcotest.(check bool) "async no" false (System.is_asynchronous d);
  Alcotest.(check bool) "async yes" true
    (System.is_asynchronous (System.asynchronous ~n:5));
  Alcotest.check_raises "bad params"
    (Invalid_argument "System.make: need 1 <= i(3) <= j(2) <= n(5)") (fun () ->
      ignore (System.make ~i:3 ~j:2 ~n:5))

let test_system_member () =
  let s = fig1_prefix 5_000 in
  (* {p1,p2} timely wrt {q}: member of S^2_{1,3}... j >= i required, so
     check S^2_{3,3} via supersets: {p1,p2} wrt {p1,p2,q} *)
  let d = System.make ~i:2 ~j:3 ~n:3 in
  Alcotest.(check bool) "member at bound 4" true (System.member ~bound:4 d s);
  let d1 = System.make ~i:1 ~j:3 ~n:3 in
  (* the only singleton witness at small bound is {q} itself: q takes
     every other step; p1 and p2 are not timely *)
  let singleton_witnesses = System.witnesses ~bound:4 d1 s in
  Alcotest.(check (list (pair procset procset)))
    "only q is a singleton witness"
    [ (Procset.singleton 2, Procset.full ~n:3) ]
    singleton_witnesses;
  (* q is timely wrt {p1}: S^1_{1,3} is asynchronous anyway *)
  let witnesses = System.witnesses ~bound:4 d s in
  Alcotest.(check bool) "some witness" true (witnesses <> [])

let test_system_best_witness () =
  let s = fig1_prefix 5_000 in
  let d = System.make ~i:2 ~j:3 ~n:3 in
  let p, q, bound = System.best_witness d s in
  Alcotest.(check bool) "valid" true (Timeliness.holds ~bound ~p ~q s);
  Alcotest.(check int) "sizes" 2 (Procset.cardinal p);
  Alcotest.(check int) "sizes q" 3 (Procset.cardinal q)

let test_system_containment () =
  let d_strong = System.make ~i:1 ~j:5 ~n:5 in
  let d_weak = System.make ~i:2 ~j:3 ~n:5 in
  Alcotest.(check bool) "strong in weak" true (System.contained d_strong d_weak);
  Alcotest.(check bool) "weak not in strong" false (System.contained d_weak d_strong);
  (* everything is contained in the asynchronous system *)
  Alcotest.(check bool) "in async" true
    (System.contained d_weak (System.asynchronous ~n:5));
  Alcotest.(check bool) "async top only" false
    (System.contained (System.asynchronous ~n:5) d_weak)

let prop_observation4 =
  (* semantic containment: if d ⊆ d' syntactically then every schedule
     with a d-witness has a d'-witness at the same bound *)
  QCheck2.Test.make ~name:"Observation 4: containment is semantic" ~count:150
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let rng = rng_state (seed + 5) in
      let n = 4 + Rng.int rng 3 in
      let s = random_schedule rng ~n ~len:300 in
      let i = 1 + Rng.int rng n in
      let j = i + Rng.int rng (n - i + 1) in
      let i' = 1 + Rng.int rng n in
      let j' = i' + Rng.int rng (n - i' + 1) in
      let d = System.make ~i ~j ~n and d' = System.make ~i:i' ~j:j' ~n in
      (not (System.contained d d'))
      || (not (System.member ~bound:8 d s))
      || System.member ~bound:8 d' s)

let test_observation5 () =
  (* S^i_{i,n} admits every schedule: any set is timely wrt itself *)
  let rng = rng_state 99 in
  for _ = 1 to 20 do
    let n = 3 + Rng.int rng 4 in
    let s = random_schedule rng ~n ~len:200 in
    let i = 1 + Rng.int rng n in
    let d = System.make ~i ~j:i ~n in
    Alcotest.(check bool) "asynchronous admits all" true (System.member ~bound:1 d s)
  done

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_round_robin () =
  let src = Generators.round_robin ~n:3 () in
  Alcotest.check schedule "rr" (Schedule.of_list ~n:3 [ 0; 1; 2; 0; 1; 2 ]) (Source.take src 6)

let test_round_robin_liveness () =
  let dead = ref false in
  let live p = not (!dead && p = 1) in
  let src = Generators.round_robin ~live ~n:3 () in
  let first = Source.take src 3 in
  dead := true;
  let rest = Source.take src 4 in
  Alcotest.check schedule "before" (Schedule.of_list ~n:3 [ 0; 1; 2 ]) first;
  Alcotest.check schedule "after skips dead" (Schedule.of_list ~n:3 [ 0; 2; 0; 2 ]) rest

let test_timely_contract_holds () =
  let rng = rng_state 7 in
  let contract =
    { Generators.p = Procset.of_list [ 0; 1 ]; q = Procset.of_list [ 2; 3; 4 ]; bound = 3 }
  in
  let src = Generators.timely ~n:5 ~contract ~rng () in
  let s = Source.take src 30_000 in
  Alcotest.(check bool) "contract" true
    (Timeliness.holds ~bound:3 ~p:contract.Generators.p ~q:contract.Generators.q s);
  (* individual members are not timely at the contract bound *)
  Alcotest.(check bool) "singleton 0 not timely" false
    (Timeliness.holds ~bound:3 ~p:(Procset.singleton 0) ~q:contract.Generators.q s);
  (* fairness: everyone keeps taking steps *)
  Array.iter
    (fun c -> Alcotest.(check bool) "all scheduled" true (c > 100))
    (Schedule.steps_per_process s)

let test_timely_fairness_cap () =
  let rng = rng_state 8 in
  let contract =
    { Generators.p = Procset.singleton 0; q = Procset.of_list [ 1; 2 ]; bound = 2 }
  in
  let fairness = 64 in
  let src = Generators.timely ~fairness ~n:4 ~contract ~rng () in
  let s = Source.take src 20_000 in
  (* no process waits more than [fairness] steps between consecutive
     occurrences *)
  let last = Array.make 4 (-1) in
  let worst = ref 0 in
  Schedule.iteri
    (fun idx p ->
      if last.(p) >= 0 then worst := max !worst (idx - last.(p));
      last.(p) <- idx)
    s;
  Alcotest.(check bool)
    (Printf.sprintf "gap %d <= %d" !worst fairness)
    true (!worst <= fairness)

let test_timely_with_crashes () =
  let rng = rng_state 9 in
  let contract =
    { Generators.p = Procset.of_list [ 0; 1 ]; q = Procset.of_list [ 2; 3 ]; bound = 4 }
  in
  let live, observe = Generators.crash_after ~n:4 [ (1, 50); (3, 80) ] in
  let src = Generators.timely ~live ~n:4 ~contract ~rng () in
  let own = Array.make 4 0 in
  let steps = ref [] in
  let exhausted = ref false in
  for _ = 1 to 20_000 do
    if not !exhausted then
      match Source.next src with
      | None -> exhausted := true
      | Some p ->
          steps := p :: !steps;
          own.(p) <- own.(p) + 1;
          ignore (observe p own.(p))
  done;
  let s = Schedule.of_list ~n:4 (List.rev !steps) in
  Alcotest.(check bool) "contract survives crashes" true
    (Timeliness.holds ~bound:4 ~p:contract.Generators.p ~q:contract.Generators.q s);
  Alcotest.(check int) "p2 stopped at budget" 50 (Schedule.occurrences s 1);
  Alcotest.(check int) "p4 stopped at budget" 80 (Schedule.occurrences s 3)

let test_exclusive_timely_contract () =
  let contract =
    { Generators.p = Procset.singleton 0; q = Procset.of_list [ 0; 1 ]; bound = 3 }
  in
  let src = Generators.exclusive_timely ~n:5 ~contract ~defeat:2 () in
  let s = Source.take src 200_000 in
  Alcotest.(check bool) "contract" true
    (Timeliness.holds ~bound:3 ~p:contract.Generators.p ~q:contract.Generators.q s);
  (* nothing stronger: no 2-set is timely w.r.t. any 3-set at a
     moderate bound over a long prefix... except pairs inheriting from
     the contract; check a pair that cannot inherit *)
  Alcotest.(check bool) "{p2,p3} not timely wrt {p1,p4,p5}" false
    (Timeliness.holds ~bound:64
       ~p:(Procset.of_list [ 1; 2 ])
       ~q:(Procset.of_list [ 0; 3; 4 ])
       s);
  Array.iter
    (fun c -> Alcotest.(check bool) "everyone keeps stepping" true (c > 1000))
    (Schedule.steps_per_process s)

let test_starvation_adversary () =
  let src = Generators.starvation_adversary ~n:4 ~i:1 () in
  let s = Source.take src 150_000 in
  (* no singleton is timely w.r.t. any pair at bound 40 *)
  let d = System.make ~i:1 ~j:2 ~n:4 in
  Alcotest.(check bool) "defeats S^1_{2,4}" false (System.member ~bound:40 d s);
  Array.iter
    (fun c -> Alcotest.(check bool) "fair in the large" true (c > 10_000))
    (Schedule.steps_per_process s)

let test_figure1_defaults_invalid () =
  Alcotest.check_raises "bad proc" (Invalid_argument "Proc.check: process 5 not in [0, 3)")
    (fun () -> ignore (Generators.figure1 ~p1:5 ()))

(* ------------------------------------------------------------------ *)
(* Analysis *)

let test_analyzer_incremental_matches_batch () =
  let rng = rng_state 11 in
  for _ = 1 to 20 do
    let n = 3 + Rng.int rng 3 in
    let s = random_schedule rng ~n ~len:300 in
    let p = random_set rng ~n and q = random_set rng ~n in
    let analyzer = Analysis.create ~p ~q in
    Analysis.feed_schedule analyzer s;
    Alcotest.(check int) "matches batch"
      (Timeliness.observed_bound ~p ~q s)
      (Analysis.observed_bound analyzer)
  done

let test_bound_curve () =
  let source = Generators.figure1 () in
  let curve =
    Analysis.bound_curve ~p:(Procset.singleton 0) ~q:(Procset.singleton 2) ~source
      ~lengths:[ 100; 1000; 10_000 ]
  in
  Alcotest.(check int) "three samples" 3 (Array.length curve.Analysis.lengths);
  Alcotest.(check bool) "bounds grow" true
    (curve.Analysis.bounds.(2) > curve.Analysis.bounds.(0))

let test_bound_curve_exhaustion () =
  let source = Source.of_schedule (Schedule.of_list ~n:2 [ 0; 1; 0; 1 ]) in
  let curve =
    Analysis.bound_curve ~p:(Procset.singleton 0) ~q:(Procset.singleton 1) ~source
      ~lengths:[ 2; 4; 100 ]
  in
  Alcotest.(check int) "stops at exhaustion" 2 (Array.length curve.Analysis.lengths)

let test_singleton_matrix () =
  let s = fig1_prefix 2_000 in
  let m = Analysis.singleton_matrix s in
  Alcotest.(check int) "square" 3 (Array.length m);
  (* diagonal is 1 (self-timeliness) *)
  for a = 0 to 2 do
    Alcotest.(check int) "diag" 1 m.(a).(a)
  done;
  (* q is timely w.r.t. p1 (bound 2: p1 steps alternate with q) *)
  Alcotest.(check int) "q wrt p1" 2 m.(2).(0)

(* ------------------------------------------------------------------ *)
(* Rng determinism *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:5 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

(* Golden pins for the seeded hot paths that moved from List.nth-under-
   cursor scans to array-backed pools: the streams below were recorded
   against the list implementation, so any change in draw order or
   indexing arithmetic trips them. *)

let test_rng_pick_golden () =
  let rng = Rng.create ~seed:42 in
  let picks =
    List.init 12 (fun i ->
        Rng.pick rng (List.init ((i mod 5) + 1) (fun j -> (10 * i) + j)))
  in
  Alcotest.(check (list int)) "pick stream"
    [ 0; 11; 22; 30; 40; 50; 61; 72; 81; 91; 100; 110 ]
    picks

let test_timely_golden () =
  let rng = rng_state 13 in
  let contract =
    { Generators.p = Procset.of_list [ 0; 1 ]; q = Procset.of_list [ 2; 3 ]; bound = 3 }
  in
  let s = Source.take (Generators.timely ~n:5 ~contract ~rng ()) 48 in
  Alcotest.(check (list int)) "seeded schedule"
    [
      2; 2; 0; 0; 0; 1; 1; 4; 4; 0; 0; 0; 0; 0; 0; 0; 3; 3; 1; 1; 1; 1; 3; 3; 0; 1; 1;
      1; 1; 1; 1; 1; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 4; 0; 1; 1;
    ]
    (Schedule.to_list s)

let test_exclusive_timely_golden () =
  let contract =
    { Generators.p = Procset.of_list [ 0; 1 ]; q = Procset.of_list [ 2; 3 ]; bound = 2 }
  in
  let s =
    Source.take (Generators.exclusive_timely ~phase0:8 ~growth:4 ~n:4 ~contract ~defeat:1 ()) 60
  in
  Alcotest.(check (list int)) "deterministic schedule"
    [
      0; 1; 2; 0; 3; 0; 0; 1; 2; 0; 3; 0; 0; 1; 2; 0; 3; 1; 1; 2; 1; 3; 1; 1; 2; 1; 3;
      1; 0; 1; 2; 1; 3; 1; 0; 1; 2; 1; 3; 1; 0; 2; 0; 3; 0; 0; 2; 0; 3; 0; 0; 2; 0; 3;
      0; 0; 1; 2; 0; 3;
    ]
    (Schedule.to_list s)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_observation2; prop_observation3; prop_observed_bound_least; prop_prefix_monotone;
      prop_observation4 ]

let () =
  Alcotest.run "setsync_schedule"
    [
      ( "procset",
        [
          Alcotest.test_case "basics" `Quick test_procset_basics;
          Alcotest.test_case "algebra" `Quick test_procset_algebra;
          Alcotest.test_case "full/remove" `Quick test_procset_full_remove;
          Alcotest.test_case "subsets of size" `Quick test_subsets_of_size;
          Alcotest.test_case "subset edge sizes" `Quick test_subsets_edge_sizes;
          Alcotest.test_case "invalid arguments" `Quick test_procset_invalid;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "basics" `Quick test_schedule_basics;
          Alcotest.test_case "concat/repeat" `Quick test_schedule_concat_repeat;
          Alcotest.test_case "occurrences in sets" `Quick test_schedule_occurrences_in;
          Alcotest.test_case "universe mismatch" `Quick test_schedule_universe_mismatch;
        ] );
      ( "source",
        [
          Alcotest.test_case "of_schedule" `Quick test_source_of_schedule;
          Alcotest.test_case "cycle" `Quick test_source_cycle;
          Alcotest.test_case "append/filtered" `Quick test_source_append_filtered;
        ] );
      ( "timeliness",
        [
          Alcotest.test_case "figure 1 shape" `Quick test_figure1_shape;
          Alcotest.test_case "figure 1 timeliness" `Quick test_figure1_timeliness;
          Alcotest.test_case "exact bound" `Quick test_timeliness_bound_exact;
          Alcotest.test_case "trailing gap" `Quick test_timeliness_trailing_gap;
          Alcotest.test_case "vacuous / self" `Quick test_timeliness_vacuous;
          Alcotest.test_case "P/Q overlap" `Quick test_timeliness_overlap;
          Alcotest.test_case "edge cases and boundary agreement" `Quick
            test_timeliness_edges;
          Alcotest.test_case "process timeliness" `Quick test_process_timely;
          Alcotest.test_case "union bound (Obs 2)" `Quick test_union_bound;
        ] );
      ( "system",
        [
          Alcotest.test_case "make/pp" `Quick test_system_make;
          Alcotest.test_case "membership" `Quick test_system_member;
          Alcotest.test_case "best witness" `Quick test_system_best_witness;
          Alcotest.test_case "containment (Obs 4/5)" `Quick test_system_containment;
          Alcotest.test_case "Obs 5 asynchronous" `Quick test_observation5;
        ] );
      ( "generators",
        [
          Alcotest.test_case "round robin" `Quick test_round_robin;
          Alcotest.test_case "round robin liveness" `Quick test_round_robin_liveness;
          Alcotest.test_case "timely contract" `Quick test_timely_contract_holds;
          Alcotest.test_case "timely fairness cap" `Quick test_timely_fairness_cap;
          Alcotest.test_case "timely with crashes" `Quick test_timely_with_crashes;
          Alcotest.test_case "exclusive timely" `Quick test_exclusive_timely_contract;
          Alcotest.test_case "starvation adversary" `Quick test_starvation_adversary;
          Alcotest.test_case "figure1 validation" `Quick test_figure1_defaults_invalid;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "incremental = batch" `Quick test_analyzer_incremental_matches_batch;
          Alcotest.test_case "bound curve" `Quick test_bound_curve;
          Alcotest.test_case "curve exhaustion" `Quick test_bound_curve_exhaustion;
          Alcotest.test_case "singleton matrix" `Quick test_singleton_matrix;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "pick golden" `Quick test_rng_pick_golden;
          Alcotest.test_case "timely golden" `Quick test_timely_golden;
          Alcotest.test_case "exclusive timely golden" `Quick test_exclusive_timely_golden;
        ] );
      ("properties", qsuite);
    ]
